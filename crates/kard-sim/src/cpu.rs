//! The simulated machine: threads, PKRU registers, page table, TLBs,
//! physical memory, a virtual timestamp counter, and cycle accounting.
//!
//! [`Machine`] is the single entry point the rest of the reproduction uses.
//! It is fully thread-safe so workloads can run on real OS threads, and
//! fully deterministic when driven from one thread by the trace replayer.

use crate::cost::{CostModel, CycleCount};
use crate::fault::{AccessKind, CodeSite, GpFault};
use crate::keys::{KeyLayout, ProtectionKey};
use crate::mem::{PhysFrame, VirtAddr, VirtPage};
use crate::page_table::{AddressSpace, MapError, ProtectError};
use crate::phys::{MemStats, PhysMemory};
use crate::pkru::Pkru;
use crate::tlb::{Tlb, TlbConfig, TlbStats};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Identifier of a simulated thread, assigned by [`Machine::register_thread`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ThreadId(pub usize);

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// How per-thread memory protection is realized (paper §8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProtectionMechanism {
    /// Intel MPK: `WRPKRU` changes a thread's permissions in ~20 cycles
    /// with no TLB impact.
    #[default]
    Mpk,
    /// Software fallback (ISOLATOR/iThreads-style): each per-key permission
    /// change costs an `mprotect`-class page-table update and flushes the
    /// thread's TLB. The paper cites up to ~100% overhead for such schemes;
    /// this mechanism exists so the ablation harness can measure the gap
    /// Kard's MPK usage buys.
    MprotectFallback,
}

/// Configuration of the simulated machine.
#[derive(Clone, Debug, Default)]
pub struct MachineConfig {
    /// Protection-key layout (16-key MPK by default).
    pub key_layout: KeyLayout,
    /// Per-thread dTLB geometry.
    pub tlb: TlbConfig,
    /// Cycle costs of modelled operations.
    pub cost: CostModel,
    /// Per-thread protection mechanism (MPK by default).
    pub mechanism: ProtectionMechanism,
}

struct ThreadState {
    tlb: Tlb,
}

/// A thread's PKRU as the machine stores it. Layouts whose bits fit one
/// word — real 16-key MPK and everything up to 32 keys — live in an
/// atomic, so `RDPKRU`, `WRPKRU`, and the per-access permission check
/// are single loads and stores, exactly as cheap as the real register.
/// Only the §8 wide-register ablation pays for a mutex.
enum PkruCell {
    Narrow { bits: AtomicU64, num_keys: u16 },
    Wide(Mutex<Pkru>),
}

impl PkruCell {
    fn new(pkru: Pkru) -> PkruCell {
        match pkru.to_bits64() {
            Some(bits) => PkruCell::Narrow {
                bits: AtomicU64::new(bits),
                num_keys: pkru.num_keys(),
            },
            None => PkruCell::Wide(Mutex::new(pkru)),
        }
    }

    fn load(&self) -> Pkru {
        match self {
            PkruCell::Narrow { bits, num_keys } => {
                Pkru::from_bits64(bits.load(Ordering::Acquire), *num_keys)
            }
            PkruCell::Wide(pkru) => pkru.lock().clone(),
        }
    }

    fn store(&self, pkru: Pkru) {
        match self {
            PkruCell::Narrow { bits, .. } => bits.store(
                pkru.to_bits64().expect("narrow cell holds a narrow layout"),
                Ordering::Release,
            ),
            PkruCell::Wide(cell) => *cell.lock() = pkru,
        }
    }

    fn allows(&self, key: ProtectionKey, kind: AccessKind) -> bool {
        match self {
            PkruCell::Narrow { bits, .. } => {
                Pkru::bits64_allow(bits.load(Ordering::Acquire), key, kind)
            }
            PkruCell::Wide(pkru) => pkru.lock().allows(key, kind),
        }
    }
}

/// One registered thread: the TLB behind its own (uncontended) mutex,
/// the PKRU in a [`PkruCell`], and the cycle counter as a bare atomic so
/// [`Machine::charge`] — executed for every simulated instruction —
/// never takes even that mutex. The per-thread cycle counters double as
/// the virtual clock: [`Machine::now`] sums them, so no global clock
/// word exists to contend on. Aligned so no two threads' counters share
/// a cache line.
#[repr(align(128))]
struct ThreadEntry {
    state: Mutex<ThreadState>,
    pkru: PkruCell,
    cycles: AtomicU64,
    /// Virtual time at which the thread was registered: the maximum
    /// timeline (`birth + cycles`) over the threads alive at that moment.
    /// `cycles` alone counts work *executed by this thread* and is only
    /// comparable to another thread's counter when both threads were
    /// born together; `birth + cycles` is a TSC-like common timeline —
    /// a thread spawned later can never appear to run *before* work its
    /// parent had already completed.
    birth: u64,
}

const THREAD_CHUNK: usize = 64;
const THREAD_CHUNKS: usize = 64;

/// One published chunk of the thread table.
type ThreadChunk = Box<[OnceLock<ThreadEntry>]>;

/// Publish-once thread table: a chunked `OnceLock` tree in the style of
/// the allocator's cons tables. Reaching a registered thread's state is
/// two lock-free loads plus that thread's own (uncontended) mutex;
/// registration — the cold path — appends under a small lock. The
/// reader-writer lock this replaces turned *every* simulated
/// instruction's cycle charge into a shared atomic update, which is
/// exactly the internal-synchronization scaling cost the detector's
/// lock-free section path exists to avoid.
struct ThreadTable {
    chunks: Box<[OnceLock<ThreadChunk>]>,
    len: AtomicUsize,
    reg: Mutex<()>,
}

impl ThreadTable {
    fn new() -> ThreadTable {
        ThreadTable {
            chunks: (0..THREAD_CHUNKS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
            reg: Mutex::new(()),
        }
    }

    fn push(&self, state: ThreadState, pkru: Pkru) -> usize {
        let _reg = self.reg.lock();
        // Stamp the newcomer's birth at the frontier of every live
        // thread's timeline (under the registration lock, so two
        // concurrent registrations cannot miss each other).
        let birth = self
            .iter()
            .map(|e| e.birth + e.cycles.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        let index = self.len.load(Ordering::Relaxed);
        let (chunk, slot) = (index / THREAD_CHUNK, index % THREAD_CHUNK);
        assert!(chunk < THREAD_CHUNKS, "thread capacity exhausted");
        let chunk = self.chunks[chunk]
            .get_or_init(|| (0..THREAD_CHUNK).map(|_| OnceLock::new()).collect());
        let entry = ThreadEntry {
            state: Mutex::new(state),
            pkru: PkruCell::new(pkru),
            cycles: AtomicU64::new(0),
            birth,
        };
        assert!(chunk[slot].set(entry).is_ok(), "slot taken");
        self.len.store(index + 1, Ordering::Release);
        index
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    fn get(&self, index: usize) -> Option<&ThreadEntry> {
        // No length check: an unpublished slot's `OnceLock` is empty, so
        // out-of-range indices already resolve to `None`.
        self.chunks
            .get(index / THREAD_CHUNK)?
            .get()?
            .get(index % THREAD_CHUNK)?
            .get()
    }

    fn iter(&self) -> impl Iterator<Item = &ThreadEntry> {
        // Walk published chunks directly instead of re-resolving every
        // index through `get` — `now()` sums this on the detector's hot
        // path. `take(len)` bounds the walk to entries published before
        // the call even if registrations land concurrently.
        let len = self.len();
        self.chunks
            .iter()
            .take(len.div_ceil(THREAD_CHUNK).max(1))
            .filter_map(|chunk| chunk.get())
            .flat_map(|chunk| chunk.iter())
            .filter_map(|slot| slot.get())
            .take(len)
    }
}

const COUNTER_SHARDS: usize = 16;

/// One padded shard of the operation counters, written only by the
/// threads that hash to it (`ThreadId % COUNTER_SHARDS`), so counter
/// bumps stay on thread-local cache lines. Readers sum the shards:
/// every field only grows, and per-location coherence makes each summed
/// read monotonic for the reading thread.
#[repr(align(128))]
#[derive(Default)]
struct CounterShard {
    wrpkru: AtomicU64,
    rdpkru: AtomicU64,
    pkey_mprotect: AtomicU64,
    mmap: AtomicU64,
    munmap: AtomicU64,
    ftruncate: AtomicU64,
    accesses: AtomicU64,
    faults: AtomicU64,
    context_pkru_updates: AtomicU64,
}

/// Operation counters, readable at any time via [`Machine::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// `WRPKRU` executions.
    pub wrpkru: u64,
    /// `RDPKRU` executions.
    pub rdpkru: u64,
    /// `pkey_mprotect()` system calls.
    pub pkey_mprotect: u64,
    /// `mmap()` system calls.
    pub mmap: u64,
    /// `munmap()` system calls.
    pub munmap: u64,
    /// `ftruncate()` system calls (file growth events).
    pub ftruncate: u64,
    /// Memory accesses checked.
    pub accesses: u64,
    /// Simulated #GP faults raised.
    pub faults: u64,
    /// Saved-context PKRU updates performed by a fault handler.
    pub context_pkru_updates: u64,
}

/// The simulated machine. See the [crate-level documentation](crate) for an
/// end-to-end example.
pub struct Machine {
    config: MachineConfig,
    phys: Mutex<PhysMemory>,
    aspace: parking_lot::RwLock<AddressSpace>,
    threads: ThreadTable,
    shards: Box<[CounterShard]>,
}

impl Machine {
    /// A fresh machine with no threads and an empty address space.
    #[must_use]
    pub fn new(config: MachineConfig) -> Machine {
        let total_keys = config.key_layout.total_keys;
        Machine {
            config,
            phys: Mutex::new(PhysMemory::new()),
            aspace: parking_lot::RwLock::new(AddressSpace::new(total_keys)),
            threads: ThreadTable::new(),
            shards: (0..COUNTER_SHARDS).map(|_| CounterShard::default()).collect(),
        }
    }

    fn shard(&self, thread: ThreadId) -> &CounterShard {
        &self.shards[thread.0 % COUNTER_SHARDS]
    }

    /// The machine's key layout.
    #[must_use]
    pub fn key_layout(&self) -> KeyLayout {
        self.config.key_layout
    }

    /// The machine's cost model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.config.cost
    }

    /// Register a new thread. Its PKRU starts fully permissive, matching
    /// the architectural reset state (PKRU = 0).
    pub fn register_thread(&self) -> ThreadId {
        ThreadId(self.threads.push(
            ThreadState {
                tlb: Tlb::new(self.config.tlb),
            },
            Pkru::allow_all(&self.config.key_layout),
        ))
    }

    /// Number of registered threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn entry(&self, thread: ThreadId) -> &ThreadEntry {
        self.threads
            .get(thread.0)
            .unwrap_or_else(|| panic!("unregistered thread {thread}"))
    }

    /// Charge `cycles` to `thread` and advance the global clock: one
    /// relaxed addition to a counter only this thread writes — no lock
    /// and no shared clock word, which matters because every simulated
    /// instruction lands here.
    pub fn charge(&self, thread: ThreadId, cycles: CycleCount) {
        self.entry(thread).cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Current value of the global virtual clock (no cost charged): the
    /// sum of the per-thread cycle counters. Monotonic for any observer —
    /// the counters only grow, and coherence keeps repeated reads of each
    /// one non-decreasing.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.threads
            .iter()
            .map(|e| e.cycles.load(Ordering::Relaxed))
            .sum()
    }

    /// `RDTSCP`: read the timestamp counter, charging its cost.
    pub fn rdtscp(&self, thread: ThreadId) -> u64 {
        self.charge(thread, self.config.cost.rdtscp);
        self.now()
    }

    /// `RDPKRU`: read `thread`'s protection-key rights register.
    pub fn rdpkru(&self, thread: ThreadId) -> Pkru {
        self.shard(thread).rdpkru.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.rdpkru);
        self.entry(thread).pkru.load()
    }

    /// `WRPKRU`: install a new PKRU for `thread`.
    ///
    /// Under MPK this does *not* touch the TLB — the property that makes
    /// the mechanism cheap (§2.2). Under the software fallback
    /// ([`ProtectionMechanism::MprotectFallback`]) every key whose
    /// permission changed costs a page-table update and the thread's TLB
    /// is flushed, modelling the §8 software schemes.
    pub fn wrpkru(&self, thread: ThreadId, pkru: Pkru) {
        self.shard(thread).wrpkru.fetch_add(1, Ordering::Relaxed);
        match self.config.mechanism {
            ProtectionMechanism::Mpk => {
                self.charge(thread, self.config.cost.wrpkru);
                self.entry(thread).pkru.store(pkru);
            }
            ProtectionMechanism::MprotectFallback => {
                let entry = self.entry(thread);
                let old = entry.pkru.load();
                let mut changed = 0u64;
                for raw in 0..self.config.key_layout.total_keys {
                    let key = ProtectionKey(raw);
                    if old.permission(key) != pkru.permission(key) {
                        changed += 1;
                    }
                }
                entry.pkru.store(pkru);
                if changed > 0 {
                    entry.state.lock().tlb.flush();
                }
                self.charge(
                    thread,
                    self.config.cost.wrpkru + changed * self.config.cost.pkey_mprotect,
                );
            }
        }
    }

    /// Update `thread`'s PKRU through its *saved process context*, the way
    /// Kard's fault handler installs reactive key grants (§5.4: the handler
    /// cannot execute `WRPKRU` on behalf of the interrupted thread). The
    /// cost is folded into the fault-handling charge, so none is added here.
    pub fn set_pkru_in_saved_context(&self, thread: ThreadId, pkru: Pkru) {
        self.shard(thread)
            .context_pkru_updates
            .fetch_add(1, Ordering::Relaxed);
        self.entry(thread).pkru.store(pkru);
    }

    /// Charge the end-to-end cost of one #GP delivery + handler execution.
    pub fn charge_fault_handling(&self, thread: ThreadId) {
        self.charge(thread, self.config.cost.fault_handling);
    }

    /// Allocate one physical frame of the in-memory file, charging
    /// `ftruncate` when the file must grow.
    pub fn alloc_frame(&self, thread: ThreadId) -> PhysFrame {
        let (frame, grew) = self.phys.lock().alloc_frame();
        if grew {
            self.shard(thread).ftruncate.fetch_add(1, Ordering::Relaxed);
            self.charge(thread, self.config.cost.ftruncate);
        }
        frame
    }

    /// Return a frame to the allocator (no mappings may reference it).
    pub fn free_frame(&self, frame: PhysFrame) {
        self.phys.lock().free_frame(frame);
    }

    /// Reserve `count` fresh contiguous virtual pages.
    pub fn reserve_pages(&self, count: u64) -> VirtPage {
        self.aspace.write().reserve_pages(count)
    }

    /// `mmap(MAP_SHARED)`: map `page` onto `frame`, charging the syscall.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is already mapped.
    pub fn map_page(
        &self,
        thread: ThreadId,
        page: VirtPage,
        frame: PhysFrame,
    ) -> Result<(), MapError> {
        self.shard(thread).mmap.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.mmap);
        self.aspace.write().map(page, frame)?;
        self.phys.lock().add_mapping(frame);
        Ok(())
    }

    /// Grouped `mmap(MAP_SHARED)`: map several `(page, frame)` pairs
    /// through one batched kernel call, the way a slab refill provisions a
    /// whole magazine batch at once. The full syscall cost is charged once
    /// plus a marginal per-extra-page cost
    /// ([`crate::cost::CostModel::mmap_batch_extra`]), and the batch counts
    /// as a single `mmap` syscall. A no-op for an empty batch.
    ///
    /// # Errors
    ///
    /// Returns an error if any page is already mapped; earlier pages of a
    /// failing batch stay mapped (as with a partially applied `mmap`).
    pub fn map_pages_batch(
        &self,
        thread: ThreadId,
        pairs: &[(VirtPage, PhysFrame)],
    ) -> Result<(), MapError> {
        if pairs.is_empty() {
            return Ok(());
        }
        self.shard(thread).mmap.fetch_add(1, Ordering::Relaxed);
        self.charge(
            thread,
            self.config.cost.mmap + self.config.cost.mmap_batch_extra * (pairs.len() as u64 - 1),
        );
        for &(page, frame) in pairs {
            self.aspace.write().map(page, frame)?;
            self.phys.lock().add_mapping(frame);
        }
        Ok(())
    }

    /// `munmap`: unmap `page`, returning the frame it referenced.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is not mapped.
    pub fn unmap_page(&self, thread: ThreadId, page: VirtPage) -> Result<PhysFrame, MapError> {
        self.shard(thread).munmap.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.munmap);
        let mapping = self.aspace.write().unmap(page)?;
        self.phys.lock().remove_mapping(mapping.frame);
        self.invalidate_tlbs(page);
        Ok(mapping.frame)
    }

    /// Grouped `munmap`: unmap several pages through one batched kernel
    /// call (magazine retirement returns dead slab pages in bulk). The
    /// full syscall cost is charged once plus a marginal per-extra-page
    /// cost ([`crate::cost::CostModel::munmap_batch_extra`]), and the
    /// batch counts as a single `munmap` syscall. A no-op for an empty
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns an error if any page is not mapped; earlier pages of a
    /// failing batch stay unmapped.
    pub fn unmap_pages_batch(&self, thread: ThreadId, pages: &[VirtPage]) -> Result<(), MapError> {
        if pages.is_empty() {
            return Ok(());
        }
        self.shard(thread).munmap.fetch_add(1, Ordering::Relaxed);
        self.charge(
            thread,
            self.config.cost.munmap
                + self.config.cost.munmap_batch_extra * (pages.len() as u64 - 1),
        );
        for &page in pages {
            let mapping = self.aspace.write().unmap(page)?;
            self.phys.lock().remove_mapping(mapping.frame);
            self.invalidate_tlbs(page);
        }
        Ok(())
    }

    /// Convenience for tests and examples: allocate a frame and map a fresh
    /// page onto it using an implicitly registered thread-0-style charge.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (which indicate simulator bugs here).
    pub fn mmap_one_page(&self) -> Result<VirtPage, MapError> {
        let thread = ThreadId(0);
        let threads_empty = self.threads.len() == 0;
        if threads_empty {
            let _ = self.register_thread();
        }
        let frame = self.alloc_frame(thread);
        let page = self.reserve_pages(1);
        self.map_page(thread, page, frame)?;
        Ok(page)
    }

    /// `pkey_mprotect()`: retag `count` pages starting at `first` with
    /// `key`, charging the syscall and invalidating those pages in every
    /// thread's TLB (the kernel updates PTEs, so cached translations die).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid keys or unmapped pages.
    pub fn pkey_mprotect(
        &self,
        thread: ThreadId,
        first: VirtPage,
        count: u64,
        key: ProtectionKey,
    ) -> Result<(), ProtectError> {
        self.shard(thread).pkey_mprotect.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.pkey_mprotect);
        self.aspace.write().pkey_mprotect(first, count, key)?;
        for i in 0..count {
            self.invalidate_tlbs(first.add(i));
        }
        Ok(())
    }

    /// Grouped `pkey_mprotect()`: retag several `(first, count)` page
    /// ranges with `key` through one batched kernel call, the way libmpk
    /// groups the page-table updates of a key eviction. The full syscall
    /// cost is charged once plus a marginal per-extra-range cost
    /// ([`crate::cost::CostModel::pkey_mprotect_batch_extra`]), and the
    /// batch counts as a single `pkey_mprotect` syscall. A no-op for an
    /// empty batch.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid keys or unmapped pages; earlier ranges
    /// of a failing batch stay retagged (as with a partially applied
    /// `mprotect`).
    pub fn pkey_mprotect_batch(
        &self,
        thread: ThreadId,
        ranges: &[(VirtPage, u64)],
        key: ProtectionKey,
    ) -> Result<(), ProtectError> {
        if ranges.is_empty() {
            return Ok(());
        }
        self.shard(thread).pkey_mprotect.fetch_add(1, Ordering::Relaxed);
        self.charge(
            thread,
            self.config.cost.pkey_mprotect
                + self.config.cost.pkey_mprotect_batch_extra * (ranges.len() as u64 - 1),
        );
        for &(first, count) in ranges {
            self.aspace.write().pkey_mprotect(first, count, key)?;
            for i in 0..count {
                self.invalidate_tlbs(first.add(i));
            }
        }
        Ok(())
    }

    /// Single-page convenience wrapper over [`Machine::pkey_mprotect`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid keys or unmapped pages.
    pub fn pkey_mprotect_page(&self, page: VirtPage, key: ProtectionKey) -> Result<(), ProtectError> {
        self.pkey_mprotect(ThreadId(0), page, 1, key)
    }

    fn invalidate_tlbs(&self, page: VirtPage) {
        for entry in self.threads.iter() {
            entry.state.lock().tlb.invalidate(page);
        }
    }

    /// The protection key currently tagged on `page`, if mapped.
    #[must_use]
    pub fn page_key(&self, page: VirtPage) -> Option<ProtectionKey> {
        self.aspace.read().entry(page).map(|m| m.pkey)
    }

    /// Perform (and check) a memory access.
    ///
    /// Charges the base access cost, models the dTLB, marks the backing
    /// frame resident, and checks the thread's PKRU against the page's key.
    ///
    /// # Errors
    ///
    /// Returns a [`GpFault`] when the thread's PKRU forbids the access. The
    /// access itself does not architecturally complete in that case.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is unmapped — the reproduction never touches
    /// unmapped memory, so this indicates a bug in the caller.
    pub fn access(
        &self,
        thread: ThreadId,
        addr: VirtAddr,
        kind: AccessKind,
        ip: CodeSite,
    ) -> Result<(), GpFault> {
        self.shard(thread).accesses.fetch_add(1, Ordering::Relaxed);
        let page = addr.page();
        let mut cost = self.config.cost.mem_access;

        // Fast path: a dTLB hit yields the page's protection key from the
        // thread's own TLB, so the PKU check completes without touching the
        // shared address space at all — the same reason hardware PKU is
        // cheap. Only a miss walks the (reader-locked) page table; the walk
        // also performs the sticky first-touch bookkeeping, which a hit can
        // safely skip because an entry is only installed by an *allowed*
        // walk, which already marked the page accessed.
        let entry = self.entry(thread);
        let probed = entry.state.lock().tlb.probe(page);
        let (pkey, allowed) = match probed {
            Some(pkey) => (pkey, entry.pkru.allows(pkey, kind)),
            None => {
                cost += self.config.cost.dtlb_miss;
                let mapping = self
                    .aspace
                    .read()
                    .translate(addr)
                    .unwrap_or_else(|| panic!("access to unmapped address {addr} by {thread}"));
                let allowed = entry.pkru.allows(mapping.pkey, kind);
                if allowed {
                    entry.state.lock().tlb.install(page, mapping.pkey);
                }
                // Residency and the PTE accessed bit are sticky until the
                // page is unmapped, so only the *first* allowed touch of a
                // page needs the global physical-memory and address-space
                // locks.
                if allowed && !mapping.accessed {
                    self.phys.lock().touch(mapping.frame);
                    self.aspace.write().mark_accessed(page);
                }
                (mapping.pkey, allowed)
            }
        };
        self.charge(thread, cost);

        if allowed {
            Ok(())
        } else {
            self.shard(thread).faults.fetch_add(1, Ordering::Relaxed);
            Err(GpFault {
                thread,
                addr,
                page,
                pkey,
                access: kind,
                ip,
                tsc: self.now(),
            })
        }
    }

    /// Snapshot of the operation counters (summed over the shards).
    #[must_use]
    pub fn counters(&self) -> MachineCounters {
        let mut total = MachineCounters::default();
        for s in self.shards.iter() {
            total.wrpkru += s.wrpkru.load(Ordering::Relaxed);
            total.rdpkru += s.rdpkru.load(Ordering::Relaxed);
            total.pkey_mprotect += s.pkey_mprotect.load(Ordering::Relaxed);
            total.mmap += s.mmap.load(Ordering::Relaxed);
            total.munmap += s.munmap.load(Ordering::Relaxed);
            total.ftruncate += s.ftruncate.load(Ordering::Relaxed);
            total.accesses += s.accesses.load(Ordering::Relaxed);
            total.faults += s.faults.load(Ordering::Relaxed);
            total.context_pkru_updates += s.context_pkru_updates.load(Ordering::Relaxed);
        }
        total
    }

    /// Cycles charged to one thread so far.
    #[must_use]
    pub fn thread_cycles(&self, thread: ThreadId) -> CycleCount {
        self.entry(thread).cycles.load(Ordering::Relaxed)
    }

    /// `thread`'s position on the common virtual timeline: its birth
    /// time (the timeline frontier when it registered) plus the cycles
    /// it has executed since. Unlike [`Self::thread_cycles`] — which
    /// starts at zero for every thread — timelines of *different*
    /// threads are comparable, which is what the fault-path §5.5
    /// serialization bookkeeping needs: a thread registered after a
    /// fault handler released cannot be charged a spurious queue wait
    /// against work that finished before it existed.
    #[must_use]
    pub fn thread_timeline(&self, thread: ThreadId) -> u64 {
        let entry = self.entry(thread);
        entry.birth + entry.cycles.load(Ordering::Relaxed)
    }

    /// Sum of all threads' dTLB statistics.
    #[must_use]
    pub fn tlb_stats(&self) -> TlbStats {
        let mut total = TlbStats::default();
        for entry in self.threads.iter() {
            total.merge(entry.state.lock().tlb.stats());
        }
        total
    }

    /// Memory-consumption statistics of the simulated physical memory.
    #[must_use]
    pub fn mem_stats(&self) -> MemStats {
        self.phys.lock().stats()
    }

    /// Current Linux-style RSS: populated PTEs x page size.
    #[must_use]
    pub fn linux_rss_bytes(&self) -> u64 {
        self.aspace.read().linux_rss_bytes()
    }

    /// Peak Linux-style RSS over the run (what Table 3 reports).
    #[must_use]
    pub fn peak_linux_rss_bytes(&self) -> u64 {
        self.aspace.read().peak_linux_rss_bytes()
    }

    /// Number of mapped virtual pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.aspace.read().mapped_pages()
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("threads", &self.thread_count())
            .field("clock", &self.now())
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkru::Permission;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn threads_get_sequential_ids_and_reset_pkru() {
        let m = machine();
        let t0 = m.register_thread();
        let t1 = m.register_thread();
        assert_eq!(t0, ThreadId(0));
        assert_eq!(t1, ThreadId(1));
        assert_eq!(m.rdpkru(t0).to_raw_u32(), 0);
    }

    #[test]
    fn late_registered_thread_is_born_at_the_timeline_frontier() {
        let m = machine();
        let t0 = m.register_thread();
        m.charge(t0, 1_000_000);
        let t1 = m.register_thread();
        // t1 has executed nothing, but on the common timeline it starts
        // *after* the million cycles t0 already ran — it cannot race work
        // that finished before it existed.
        assert_eq!(m.thread_cycles(t1), 0);
        assert!(m.thread_timeline(t1) >= m.thread_timeline(t0));
        assert!(m.thread_timeline(t1) >= 1_000_000);
        // Executing work advances the timeline at the same rate as the
        // per-thread counter.
        m.charge(t1, 500);
        assert_eq!(m.thread_timeline(t1) - m.thread_cycles(t1), m.thread_timeline(t1) - 500);
        // The global clock still counts executed work only: birth offsets
        // do not inflate it.
        assert_eq!(m.now(), 1_000_500);
    }

    #[test]
    fn wrpkru_changes_only_target_thread() {
        let m = machine();
        let t0 = m.register_thread();
        let t1 = m.register_thread();
        let mut pkru = m.rdpkru(t0);
        pkru.set_permission(ProtectionKey(5), Permission::NoAccess);
        m.wrpkru(t0, pkru);
        assert_eq!(
            m.rdpkru(t0).permission(ProtectionKey(5)),
            Permission::NoAccess
        );
        assert_eq!(
            m.rdpkru(t1).permission(ProtectionKey(5)),
            Permission::ReadWrite
        );
    }

    #[test]
    fn access_allowed_then_denied_after_key_retraction() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        let key = ProtectionKey(3);
        m.pkey_mprotect(t, page, 1, key).unwrap();

        let addr = page.base_addr().offset(8);
        assert!(m.access(t, addr, AccessKind::Write, CodeSite(1)).is_ok());

        let mut pkru = m.rdpkru(t);
        pkru.set_permission(key, Permission::ReadOnly);
        m.wrpkru(t, pkru);
        assert!(m.access(t, addr, AccessKind::Read, CodeSite(2)).is_ok());
        let fault = m
            .access(t, addr, AccessKind::Write, CodeSite(3))
            .unwrap_err();
        assert_eq!(fault.pkey, key);
        assert_eq!(fault.access, AccessKind::Write);
        assert_eq!(fault.addr, addr);
        assert_eq!(fault.thread, t);
    }

    #[test]
    fn fault_does_not_mark_frame_resident() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        m.pkey_mprotect(t, page, 1, ProtectionKey(1)).unwrap();
        let mut pkru = m.rdpkru(t);
        pkru.set_permission(ProtectionKey(1), Permission::NoAccess);
        m.wrpkru(t, pkru);
        let _ = m
            .access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap_err();
        assert_eq!(m.mem_stats().resident_bytes, 0);
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let m = machine();
        let t = m.register_thread();
        let before = m.thread_cycles(t);
        m.charge(t, 100);
        let pkru = m.rdpkru(t);
        m.wrpkru(t, pkru);
        let after = m.thread_cycles(t);
        let cost = m.cost_model();
        assert_eq!(after - before, 100 + cost.rdpkru + cost.wrpkru);
        assert_eq!(m.now(), after);
    }

    #[test]
    fn counters_reflect_operations() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        m.pkey_mprotect(t, page, 1, ProtectionKey(2)).unwrap();
        let _ = m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0));
        let c = m.counters();
        assert_eq!(c.mmap, 1);
        assert_eq!(c.pkey_mprotect, 1);
        assert_eq!(c.accesses, 1);
        assert_eq!(c.faults, 0);
        assert_eq!(c.ftruncate, 1);
    }

    #[test]
    fn pkey_mprotect_invalidates_tlbs() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        // Warm the TLB.
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        let warm = m.tlb_stats();
        assert_eq!(warm.hits, 1);
        m.pkey_mprotect(t, page, 1, ProtectionKey(4)).unwrap();
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        let cold = m.tlb_stats();
        assert_eq!(cold.misses, warm.misses + 1, "mprotect must invalidate");
    }

    #[test]
    fn saved_context_update_skips_wrpkru_cost() {
        let m = machine();
        let t = m.register_thread();
        let cycles_before = m.thread_cycles(t);
        let mut pkru = Pkru::allow_all(&m.key_layout());
        pkru.set_permission(ProtectionKey(9), Permission::ReadOnly);
        m.set_pkru_in_saved_context(t, pkru);
        // RDPKRU below is the only charge.
        assert_eq!(m.thread_cycles(t), cycles_before);
        assert_eq!(
            m.rdpkru(t).permission(ProtectionKey(9)),
            Permission::ReadOnly
        );
        assert_eq!(m.counters().context_pkru_updates, 1);
        assert_eq!(m.counters().wrpkru, 0);
    }

    #[test]
    fn rdtscp_is_monotonic() {
        let m = machine();
        let t = m.register_thread();
        let a = m.rdtscp(t);
        let b = m.rdtscp(t);
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "unmapped address")]
    fn unmapped_access_panics() {
        let m = machine();
        let t = m.register_thread();
        let _ = m.access(t, VirtAddr(0xdead_0000), AccessKind::Read, CodeSite(0));
    }

    #[test]
    fn mprotect_fallback_charges_per_key_and_flushes_tlb() {
        let config = MachineConfig {
            mechanism: ProtectionMechanism::MprotectFallback,
            ..MachineConfig::default()
        };
        let m = Machine::new(config);
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        // Warm the TLB.
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        assert_eq!(m.tlb_stats().hits, 1);

        let before = m.thread_cycles(t);
        let mut pkru = m.rdpkru(t);
        pkru.set_permission(ProtectionKey(3), Permission::NoAccess);
        pkru.set_permission(ProtectionKey(5), Permission::ReadOnly);
        m.wrpkru(t, pkru);
        let cost = m.cost_model();
        assert!(
            m.thread_cycles(t) - before >= 2 * cost.pkey_mprotect,
            "two key changes cost two mprotect-class updates"
        );
        // The flush makes the next access miss again.
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        assert_eq!(m.tlb_stats().misses, 2, "fallback flushed the TLB");
    }

    #[test]
    fn mprotect_fallback_noop_wrpkru_is_cheap() {
        let config = MachineConfig {
            mechanism: ProtectionMechanism::MprotectFallback,
            ..MachineConfig::default()
        };
        let m = Machine::new(config);
        let t = m.register_thread();
        let before = m.thread_cycles(t);
        let pkru = m.rdpkru(t);
        m.wrpkru(t, pkru); // No permission actually changes.
        let cost = m.cost_model();
        assert_eq!(
            m.thread_cycles(t) - before,
            cost.rdpkru + cost.wrpkru,
            "no key changed: no mprotect charge"
        );
    }

    #[test]
    fn unmap_returns_frame_and_releases_mapping() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        let frame = m.unmap_page(t, page).unwrap();
        m.free_frame(frame); // Must not panic: mapping count is back to 0.
        assert_eq!(m.mapped_pages(), 0);
    }
}
