//! The simulated machine: threads, PKRU registers, page table, TLBs,
//! physical memory, a virtual timestamp counter, and cycle accounting.
//!
//! [`Machine`] is the single entry point the rest of the reproduction uses.
//! It is fully thread-safe so workloads can run on real OS threads, and
//! fully deterministic when driven from one thread by the trace replayer.

use crate::cost::{CostModel, CycleCount};
use crate::fault::{AccessKind, CodeSite, GpFault};
use crate::keys::{KeyLayout, ProtectionKey};
use crate::mem::{PhysFrame, VirtAddr, VirtPage};
use crate::page_table::{AddressSpace, MapError, ProtectError};
use crate::phys::{MemStats, PhysMemory};
use crate::pkru::Pkru;
use crate::tlb::{Tlb, TlbConfig, TlbStats};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a simulated thread, assigned by [`Machine::register_thread`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ThreadId(pub usize);

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// How per-thread memory protection is realized (paper §8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProtectionMechanism {
    /// Intel MPK: `WRPKRU` changes a thread's permissions in ~20 cycles
    /// with no TLB impact.
    #[default]
    Mpk,
    /// Software fallback (ISOLATOR/iThreads-style): each per-key permission
    /// change costs an `mprotect`-class page-table update and flushes the
    /// thread's TLB. The paper cites up to ~100% overhead for such schemes;
    /// this mechanism exists so the ablation harness can measure the gap
    /// Kard's MPK usage buys.
    MprotectFallback,
}

/// Configuration of the simulated machine.
#[derive(Clone, Debug, Default)]
pub struct MachineConfig {
    /// Protection-key layout (16-key MPK by default).
    pub key_layout: KeyLayout,
    /// Per-thread dTLB geometry.
    pub tlb: TlbConfig,
    /// Cycle costs of modelled operations.
    pub cost: CostModel,
    /// Per-thread protection mechanism (MPK by default).
    pub mechanism: ProtectionMechanism,
}

struct ThreadState {
    pkru: Pkru,
    tlb: Tlb,
    cycles: CycleCount,
}

/// Operation counters, readable at any time via [`Machine::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// `WRPKRU` executions.
    pub wrpkru: u64,
    /// `RDPKRU` executions.
    pub rdpkru: u64,
    /// `pkey_mprotect()` system calls.
    pub pkey_mprotect: u64,
    /// `mmap()` system calls.
    pub mmap: u64,
    /// `munmap()` system calls.
    pub munmap: u64,
    /// `ftruncate()` system calls (file growth events).
    pub ftruncate: u64,
    /// Memory accesses checked.
    pub accesses: u64,
    /// Simulated #GP faults raised.
    pub faults: u64,
    /// Saved-context PKRU updates performed by a fault handler.
    pub context_pkru_updates: u64,
}

#[derive(Default)]
struct AtomicCounters {
    wrpkru: AtomicU64,
    rdpkru: AtomicU64,
    pkey_mprotect: AtomicU64,
    mmap: AtomicU64,
    munmap: AtomicU64,
    ftruncate: AtomicU64,
    accesses: AtomicU64,
    faults: AtomicU64,
    context_pkru_updates: AtomicU64,
}

/// The simulated machine. See the [crate-level documentation](crate) for an
/// end-to-end example.
pub struct Machine {
    config: MachineConfig,
    phys: Mutex<PhysMemory>,
    aspace: RwLock<AddressSpace>,
    threads: RwLock<Vec<Mutex<ThreadState>>>,
    clock: AtomicU64,
    counters: AtomicCounters,
}

impl Machine {
    /// A fresh machine with no threads and an empty address space.
    #[must_use]
    pub fn new(config: MachineConfig) -> Machine {
        let total_keys = config.key_layout.total_keys;
        Machine {
            config,
            phys: Mutex::new(PhysMemory::new()),
            aspace: RwLock::new(AddressSpace::new(total_keys)),
            threads: RwLock::new(Vec::new()),
            clock: AtomicU64::new(0),
            counters: AtomicCounters::default(),
        }
    }

    /// The machine's key layout.
    #[must_use]
    pub fn key_layout(&self) -> KeyLayout {
        self.config.key_layout
    }

    /// The machine's cost model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.config.cost
    }

    /// Register a new thread. Its PKRU starts fully permissive, matching
    /// the architectural reset state (PKRU = 0).
    pub fn register_thread(&self) -> ThreadId {
        let mut threads = self.threads.write();
        let id = ThreadId(threads.len());
        threads.push(Mutex::new(ThreadState {
            pkru: Pkru::allow_all(&self.config.key_layout),
            tlb: Tlb::new(self.config.tlb),
            cycles: 0,
        }));
        id
    }

    /// Number of registered threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.read().len()
    }

    fn with_thread<R>(&self, thread: ThreadId, f: impl FnOnce(&mut ThreadState) -> R) -> R {
        let threads = self.threads.read();
        let state = threads
            .get(thread.0)
            .unwrap_or_else(|| panic!("unregistered thread {thread}"));
        let mut guard = state.lock();
        f(&mut guard)
    }

    /// Charge `cycles` to `thread` and advance the global clock.
    pub fn charge(&self, thread: ThreadId, cycles: CycleCount) {
        self.with_thread(thread, |state| state.cycles += cycles);
        self.clock.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Current value of the global virtual clock (no cost charged).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// `RDTSCP`: read the timestamp counter, charging its cost.
    pub fn rdtscp(&self, thread: ThreadId) -> u64 {
        self.charge(thread, self.config.cost.rdtscp);
        self.now()
    }

    /// `RDPKRU`: read `thread`'s protection-key rights register.
    pub fn rdpkru(&self, thread: ThreadId) -> Pkru {
        self.counters.rdpkru.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.rdpkru);
        self.with_thread(thread, |state| state.pkru.clone())
    }

    /// `WRPKRU`: install a new PKRU for `thread`.
    ///
    /// Under MPK this does *not* touch the TLB — the property that makes
    /// the mechanism cheap (§2.2). Under the software fallback
    /// ([`ProtectionMechanism::MprotectFallback`]) every key whose
    /// permission changed costs a page-table update and the thread's TLB
    /// is flushed, modelling the §8 software schemes.
    pub fn wrpkru(&self, thread: ThreadId, pkru: Pkru) {
        self.counters.wrpkru.fetch_add(1, Ordering::Relaxed);
        match self.config.mechanism {
            ProtectionMechanism::Mpk => {
                self.charge(thread, self.config.cost.wrpkru);
                self.with_thread(thread, |state| state.pkru = pkru);
            }
            ProtectionMechanism::MprotectFallback => {
                let mut changed = 0u64;
                self.with_thread(thread, |state| {
                    for raw in 0..self.config.key_layout.total_keys {
                        let key = ProtectionKey(raw);
                        if state.pkru.permission(key) != pkru.permission(key) {
                            changed += 1;
                        }
                    }
                    state.pkru = pkru;
                    if changed > 0 {
                        state.tlb.flush();
                    }
                });
                self.charge(
                    thread,
                    self.config.cost.wrpkru + changed * self.config.cost.pkey_mprotect,
                );
            }
        }
    }

    /// Update `thread`'s PKRU through its *saved process context*, the way
    /// Kard's fault handler installs reactive key grants (§5.4: the handler
    /// cannot execute `WRPKRU` on behalf of the interrupted thread). The
    /// cost is folded into the fault-handling charge, so none is added here.
    pub fn set_pkru_in_saved_context(&self, thread: ThreadId, pkru: Pkru) {
        self.counters
            .context_pkru_updates
            .fetch_add(1, Ordering::Relaxed);
        self.with_thread(thread, |state| state.pkru = pkru);
    }

    /// Charge the end-to-end cost of one #GP delivery + handler execution.
    pub fn charge_fault_handling(&self, thread: ThreadId) {
        self.charge(thread, self.config.cost.fault_handling);
    }

    /// Allocate one physical frame of the in-memory file, charging
    /// `ftruncate` when the file must grow.
    pub fn alloc_frame(&self, thread: ThreadId) -> PhysFrame {
        let (frame, grew) = self.phys.lock().alloc_frame();
        if grew {
            self.counters.ftruncate.fetch_add(1, Ordering::Relaxed);
            self.charge(thread, self.config.cost.ftruncate);
        }
        frame
    }

    /// Return a frame to the allocator (no mappings may reference it).
    pub fn free_frame(&self, frame: PhysFrame) {
        self.phys.lock().free_frame(frame);
    }

    /// Reserve `count` fresh contiguous virtual pages.
    pub fn reserve_pages(&self, count: u64) -> VirtPage {
        self.aspace.write().reserve_pages(count)
    }

    /// `mmap(MAP_SHARED)`: map `page` onto `frame`, charging the syscall.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is already mapped.
    pub fn map_page(
        &self,
        thread: ThreadId,
        page: VirtPage,
        frame: PhysFrame,
    ) -> Result<(), MapError> {
        self.counters.mmap.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.mmap);
        self.aspace.write().map(page, frame)?;
        self.phys.lock().add_mapping(frame);
        Ok(())
    }

    /// Grouped `mmap(MAP_SHARED)`: map several `(page, frame)` pairs
    /// through one batched kernel call, the way a slab refill provisions a
    /// whole magazine batch at once. The full syscall cost is charged once
    /// plus a marginal per-extra-page cost
    /// ([`crate::cost::CostModel::mmap_batch_extra`]), and the batch counts
    /// as a single `mmap` syscall. A no-op for an empty batch.
    ///
    /// # Errors
    ///
    /// Returns an error if any page is already mapped; earlier pages of a
    /// failing batch stay mapped (as with a partially applied `mmap`).
    pub fn map_pages_batch(
        &self,
        thread: ThreadId,
        pairs: &[(VirtPage, PhysFrame)],
    ) -> Result<(), MapError> {
        if pairs.is_empty() {
            return Ok(());
        }
        self.counters.mmap.fetch_add(1, Ordering::Relaxed);
        self.charge(
            thread,
            self.config.cost.mmap + self.config.cost.mmap_batch_extra * (pairs.len() as u64 - 1),
        );
        for &(page, frame) in pairs {
            self.aspace.write().map(page, frame)?;
            self.phys.lock().add_mapping(frame);
        }
        Ok(())
    }

    /// `munmap`: unmap `page`, returning the frame it referenced.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is not mapped.
    pub fn unmap_page(&self, thread: ThreadId, page: VirtPage) -> Result<PhysFrame, MapError> {
        self.counters.munmap.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.munmap);
        let mapping = self.aspace.write().unmap(page)?;
        self.phys.lock().remove_mapping(mapping.frame);
        self.invalidate_tlbs(page);
        Ok(mapping.frame)
    }

    /// Grouped `munmap`: unmap several pages through one batched kernel
    /// call (magazine retirement returns dead slab pages in bulk). The
    /// full syscall cost is charged once plus a marginal per-extra-page
    /// cost ([`crate::cost::CostModel::munmap_batch_extra`]), and the
    /// batch counts as a single `munmap` syscall. A no-op for an empty
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns an error if any page is not mapped; earlier pages of a
    /// failing batch stay unmapped.
    pub fn unmap_pages_batch(&self, thread: ThreadId, pages: &[VirtPage]) -> Result<(), MapError> {
        if pages.is_empty() {
            return Ok(());
        }
        self.counters.munmap.fetch_add(1, Ordering::Relaxed);
        self.charge(
            thread,
            self.config.cost.munmap
                + self.config.cost.munmap_batch_extra * (pages.len() as u64 - 1),
        );
        for &page in pages {
            let mapping = self.aspace.write().unmap(page)?;
            self.phys.lock().remove_mapping(mapping.frame);
            self.invalidate_tlbs(page);
        }
        Ok(())
    }

    /// Convenience for tests and examples: allocate a frame and map a fresh
    /// page onto it using an implicitly registered thread-0-style charge.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (which indicate simulator bugs here).
    pub fn mmap_one_page(&self) -> Result<VirtPage, MapError> {
        let thread = ThreadId(0);
        let threads_empty = self.threads.read().is_empty();
        if threads_empty {
            let _ = self.register_thread();
        }
        let frame = self.alloc_frame(thread);
        let page = self.reserve_pages(1);
        self.map_page(thread, page, frame)?;
        Ok(page)
    }

    /// `pkey_mprotect()`: retag `count` pages starting at `first` with
    /// `key`, charging the syscall and invalidating those pages in every
    /// thread's TLB (the kernel updates PTEs, so cached translations die).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid keys or unmapped pages.
    pub fn pkey_mprotect(
        &self,
        thread: ThreadId,
        first: VirtPage,
        count: u64,
        key: ProtectionKey,
    ) -> Result<(), ProtectError> {
        self.counters.pkey_mprotect.fetch_add(1, Ordering::Relaxed);
        self.charge(thread, self.config.cost.pkey_mprotect);
        self.aspace.write().pkey_mprotect(first, count, key)?;
        for i in 0..count {
            self.invalidate_tlbs(first.add(i));
        }
        Ok(())
    }

    /// Grouped `pkey_mprotect()`: retag several `(first, count)` page
    /// ranges with `key` through one batched kernel call, the way libmpk
    /// groups the page-table updates of a key eviction. The full syscall
    /// cost is charged once plus a marginal per-extra-range cost
    /// ([`crate::cost::CostModel::pkey_mprotect_batch_extra`]), and the
    /// batch counts as a single `pkey_mprotect` syscall. A no-op for an
    /// empty batch.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid keys or unmapped pages; earlier ranges
    /// of a failing batch stay retagged (as with a partially applied
    /// `mprotect`).
    pub fn pkey_mprotect_batch(
        &self,
        thread: ThreadId,
        ranges: &[(VirtPage, u64)],
        key: ProtectionKey,
    ) -> Result<(), ProtectError> {
        if ranges.is_empty() {
            return Ok(());
        }
        self.counters.pkey_mprotect.fetch_add(1, Ordering::Relaxed);
        self.charge(
            thread,
            self.config.cost.pkey_mprotect
                + self.config.cost.pkey_mprotect_batch_extra * (ranges.len() as u64 - 1),
        );
        for &(first, count) in ranges {
            self.aspace.write().pkey_mprotect(first, count, key)?;
            for i in 0..count {
                self.invalidate_tlbs(first.add(i));
            }
        }
        Ok(())
    }

    /// Single-page convenience wrapper over [`Machine::pkey_mprotect`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid keys or unmapped pages.
    pub fn pkey_mprotect_page(&self, page: VirtPage, key: ProtectionKey) -> Result<(), ProtectError> {
        self.pkey_mprotect(ThreadId(0), page, 1, key)
    }

    fn invalidate_tlbs(&self, page: VirtPage) {
        let threads = self.threads.read();
        for state in threads.iter() {
            state.lock().tlb.invalidate(page);
        }
    }

    /// The protection key currently tagged on `page`, if mapped.
    #[must_use]
    pub fn page_key(&self, page: VirtPage) -> Option<ProtectionKey> {
        self.aspace.read().entry(page).map(|m| m.pkey)
    }

    /// Perform (and check) a memory access.
    ///
    /// Charges the base access cost, models the dTLB, marks the backing
    /// frame resident, and checks the thread's PKRU against the page's key.
    ///
    /// # Errors
    ///
    /// Returns a [`GpFault`] when the thread's PKRU forbids the access. The
    /// access itself does not architecturally complete in that case.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is unmapped — the reproduction never touches
    /// unmapped memory, so this indicates a bug in the caller.
    pub fn access(
        &self,
        thread: ThreadId,
        addr: VirtAddr,
        kind: AccessKind,
        ip: CodeSite,
    ) -> Result<(), GpFault> {
        self.counters.accesses.fetch_add(1, Ordering::Relaxed);
        let page = addr.page();
        let mapping = self
            .aspace
            .read()
            .translate(addr)
            .unwrap_or_else(|| panic!("access to unmapped address {addr} by {thread}"));

        let mut cost = self.config.cost.mem_access;
        let allowed = self.with_thread(thread, |state| {
            if !state.tlb.lookup(page) {
                cost += self.config.cost.dtlb_miss;
            }
            state.pkru.allows(mapping.pkey, kind)
        });
        self.charge(thread, cost);

        if allowed {
            self.phys.lock().touch(mapping.frame);
            self.aspace.write().mark_accessed(page);
            Ok(())
        } else {
            self.counters.faults.fetch_add(1, Ordering::Relaxed);
            Err(GpFault {
                thread,
                addr,
                page,
                pkey: mapping.pkey,
                access: kind,
                ip,
                tsc: self.now(),
            })
        }
    }

    /// Snapshot of the operation counters.
    #[must_use]
    pub fn counters(&self) -> MachineCounters {
        MachineCounters {
            wrpkru: self.counters.wrpkru.load(Ordering::Relaxed),
            rdpkru: self.counters.rdpkru.load(Ordering::Relaxed),
            pkey_mprotect: self.counters.pkey_mprotect.load(Ordering::Relaxed),
            mmap: self.counters.mmap.load(Ordering::Relaxed),
            munmap: self.counters.munmap.load(Ordering::Relaxed),
            ftruncate: self.counters.ftruncate.load(Ordering::Relaxed),
            accesses: self.counters.accesses.load(Ordering::Relaxed),
            faults: self.counters.faults.load(Ordering::Relaxed),
            context_pkru_updates: self.counters.context_pkru_updates.load(Ordering::Relaxed),
        }
    }

    /// Cycles charged to one thread so far.
    #[must_use]
    pub fn thread_cycles(&self, thread: ThreadId) -> CycleCount {
        self.with_thread(thread, |state| state.cycles)
    }

    /// Sum of all threads' dTLB statistics.
    #[must_use]
    pub fn tlb_stats(&self) -> TlbStats {
        let threads = self.threads.read();
        let mut total = TlbStats::default();
        for state in threads.iter() {
            total.merge(state.lock().tlb.stats());
        }
        total
    }

    /// Memory-consumption statistics of the simulated physical memory.
    #[must_use]
    pub fn mem_stats(&self) -> MemStats {
        self.phys.lock().stats()
    }

    /// Current Linux-style RSS: populated PTEs x page size.
    #[must_use]
    pub fn linux_rss_bytes(&self) -> u64 {
        self.aspace.read().linux_rss_bytes()
    }

    /// Peak Linux-style RSS over the run (what Table 3 reports).
    #[must_use]
    pub fn peak_linux_rss_bytes(&self) -> u64 {
        self.aspace.read().peak_linux_rss_bytes()
    }

    /// Number of mapped virtual pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.aspace.read().mapped_pages()
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("threads", &self.thread_count())
            .field("clock", &self.now())
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkru::Permission;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn threads_get_sequential_ids_and_reset_pkru() {
        let m = machine();
        let t0 = m.register_thread();
        let t1 = m.register_thread();
        assert_eq!(t0, ThreadId(0));
        assert_eq!(t1, ThreadId(1));
        assert_eq!(m.rdpkru(t0).to_raw_u32(), 0);
    }

    #[test]
    fn wrpkru_changes_only_target_thread() {
        let m = machine();
        let t0 = m.register_thread();
        let t1 = m.register_thread();
        let mut pkru = m.rdpkru(t0);
        pkru.set_permission(ProtectionKey(5), Permission::NoAccess);
        m.wrpkru(t0, pkru);
        assert_eq!(
            m.rdpkru(t0).permission(ProtectionKey(5)),
            Permission::NoAccess
        );
        assert_eq!(
            m.rdpkru(t1).permission(ProtectionKey(5)),
            Permission::ReadWrite
        );
    }

    #[test]
    fn access_allowed_then_denied_after_key_retraction() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        let key = ProtectionKey(3);
        m.pkey_mprotect(t, page, 1, key).unwrap();

        let addr = page.base_addr().offset(8);
        assert!(m.access(t, addr, AccessKind::Write, CodeSite(1)).is_ok());

        let mut pkru = m.rdpkru(t);
        pkru.set_permission(key, Permission::ReadOnly);
        m.wrpkru(t, pkru);
        assert!(m.access(t, addr, AccessKind::Read, CodeSite(2)).is_ok());
        let fault = m
            .access(t, addr, AccessKind::Write, CodeSite(3))
            .unwrap_err();
        assert_eq!(fault.pkey, key);
        assert_eq!(fault.access, AccessKind::Write);
        assert_eq!(fault.addr, addr);
        assert_eq!(fault.thread, t);
    }

    #[test]
    fn fault_does_not_mark_frame_resident() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        m.pkey_mprotect(t, page, 1, ProtectionKey(1)).unwrap();
        let mut pkru = m.rdpkru(t);
        pkru.set_permission(ProtectionKey(1), Permission::NoAccess);
        m.wrpkru(t, pkru);
        let _ = m
            .access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap_err();
        assert_eq!(m.mem_stats().resident_bytes, 0);
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let m = machine();
        let t = m.register_thread();
        let before = m.thread_cycles(t);
        m.charge(t, 100);
        let pkru = m.rdpkru(t);
        m.wrpkru(t, pkru);
        let after = m.thread_cycles(t);
        let cost = m.cost_model();
        assert_eq!(after - before, 100 + cost.rdpkru + cost.wrpkru);
        assert_eq!(m.now(), after);
    }

    #[test]
    fn counters_reflect_operations() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        m.pkey_mprotect(t, page, 1, ProtectionKey(2)).unwrap();
        let _ = m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0));
        let c = m.counters();
        assert_eq!(c.mmap, 1);
        assert_eq!(c.pkey_mprotect, 1);
        assert_eq!(c.accesses, 1);
        assert_eq!(c.faults, 0);
        assert_eq!(c.ftruncate, 1);
    }

    #[test]
    fn pkey_mprotect_invalidates_tlbs() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        // Warm the TLB.
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        let warm = m.tlb_stats();
        assert_eq!(warm.hits, 1);
        m.pkey_mprotect(t, page, 1, ProtectionKey(4)).unwrap();
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        let cold = m.tlb_stats();
        assert_eq!(cold.misses, warm.misses + 1, "mprotect must invalidate");
    }

    #[test]
    fn saved_context_update_skips_wrpkru_cost() {
        let m = machine();
        let t = m.register_thread();
        let cycles_before = m.thread_cycles(t);
        let mut pkru = Pkru::allow_all(&m.key_layout());
        pkru.set_permission(ProtectionKey(9), Permission::ReadOnly);
        m.set_pkru_in_saved_context(t, pkru);
        // RDPKRU below is the only charge.
        assert_eq!(m.thread_cycles(t), cycles_before);
        assert_eq!(
            m.rdpkru(t).permission(ProtectionKey(9)),
            Permission::ReadOnly
        );
        assert_eq!(m.counters().context_pkru_updates, 1);
        assert_eq!(m.counters().wrpkru, 0);
    }

    #[test]
    fn rdtscp_is_monotonic() {
        let m = machine();
        let t = m.register_thread();
        let a = m.rdtscp(t);
        let b = m.rdtscp(t);
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "unmapped address")]
    fn unmapped_access_panics() {
        let m = machine();
        let t = m.register_thread();
        let _ = m.access(t, VirtAddr(0xdead_0000), AccessKind::Read, CodeSite(0));
    }

    #[test]
    fn mprotect_fallback_charges_per_key_and_flushes_tlb() {
        let config = MachineConfig {
            mechanism: ProtectionMechanism::MprotectFallback,
            ..MachineConfig::default()
        };
        let m = Machine::new(config);
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        // Warm the TLB.
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        assert_eq!(m.tlb_stats().hits, 1);

        let before = m.thread_cycles(t);
        let mut pkru = m.rdpkru(t);
        pkru.set_permission(ProtectionKey(3), Permission::NoAccess);
        pkru.set_permission(ProtectionKey(5), Permission::ReadOnly);
        m.wrpkru(t, pkru);
        let cost = m.cost_model();
        assert!(
            m.thread_cycles(t) - before >= 2 * cost.pkey_mprotect,
            "two key changes cost two mprotect-class updates"
        );
        // The flush makes the next access miss again.
        m.access(t, page.base_addr(), AccessKind::Read, CodeSite(0))
            .unwrap();
        assert_eq!(m.tlb_stats().misses, 2, "fallback flushed the TLB");
    }

    #[test]
    fn mprotect_fallback_noop_wrpkru_is_cheap() {
        let config = MachineConfig {
            mechanism: ProtectionMechanism::MprotectFallback,
            ..MachineConfig::default()
        };
        let m = Machine::new(config);
        let t = m.register_thread();
        let before = m.thread_cycles(t);
        let pkru = m.rdpkru(t);
        m.wrpkru(t, pkru); // No permission actually changes.
        let cost = m.cost_model();
        assert_eq!(
            m.thread_cycles(t) - before,
            cost.rdpkru + cost.wrpkru,
            "no key changed: no mprotect charge"
        );
    }

    #[test]
    fn unmap_returns_frame_and_releases_mapping() {
        let m = machine();
        let t = m.register_thread();
        let page = m.mmap_one_page().unwrap();
        let frame = m.unmap_page(t, page).unwrap();
        m.free_frame(frame); // Must not panic: mapping count is back to 0.
        assert_eq!(m.mapped_pages(), 0);
    }
}
