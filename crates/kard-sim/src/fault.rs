//! Simulated General Protection Fault (#GP) descriptors.
//!
//! When a memory access violates the accessing thread's PKRU, real hardware
//! raises a #GP and the kernel delivers a signal carrying the faulting
//! address, the protection key, and the saved process context. Kard's fault
//! handler consumes exactly that information (§5.5), so [`GpFault`] carries
//! the same fields.

use crate::keys::ProtectionKey;
use crate::mem::{VirtAddr, VirtPage};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of memory access: load or store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store. Per the data race definition (§2.1), at least one of two
    /// conflicting accesses must be a write.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// An identifier for a program location (instruction pointer analog).
///
/// Kard's compiler pass passes the virtual address of each synchronization
/// call site to its wrapper functions to tell critical sections apart
/// (§5.3); the simulator uses opaque site identifiers for the same purpose.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct CodeSite(pub u64);

impl fmt::Debug for CodeSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ip:{:#x}", self.0)
    }
}

/// A simulated MPK protection fault.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GpFault {
    /// Thread whose access faulted.
    pub thread: crate::cpu::ThreadId,
    /// The faulting virtual address.
    pub addr: VirtAddr,
    /// The page containing the faulting address.
    pub page: VirtPage,
    /// The protection key tagged on the faulting page.
    pub pkey: ProtectionKey,
    /// Whether the faulting access was a read or a write.
    pub access: AccessKind,
    /// Program location of the faulting access (process context analog).
    pub ip: CodeSite,
    /// Virtual timestamp (RDTSCP analog) at which the fault was raised.
    pub tsc: u64,
}

impl fmt::Display for GpFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#GP: thread {} {} at {} (key {}, {:?}, tsc {})",
            self.thread.0, self.access, self.addr, self.pkey, self.ip, self.tsc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::ThreadId;

    #[test]
    fn fault_display_mentions_key_and_kind() {
        let fault = GpFault {
            thread: ThreadId(2),
            addr: VirtAddr(0x5000),
            page: VirtAddr(0x5000).page(),
            pkey: ProtectionKey(7),
            access: AccessKind::Write,
            ip: CodeSite(0x40_0000),
            tsc: 123,
        };
        let text = fault.to_string();
        assert!(text.contains("write"));
        assert!(text.contains("k7"));
        assert!(text.contains("0x5000"));
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
