//! The cycle-cost model.
//!
//! The simulator cannot measure wall-clock slowdown on real MPK hardware, so
//! every modelled operation charges a cycle cost to a virtual clock. The
//! constants come from the paper and the work it cites:
//!
//! * `WRPKRU` ≈ 20 cycles, `RDPKRU` < 1 cycle — §2.2, citing libmpk;
//! * fault handling ≈ 24,000 cycles — §5.5 ("the average fault handling
//!   delay (e.g., 24,000 cycles on our machine)");
//! * `pkey_mprotect`, `mmap`, `ftruncate` syscall costs — order-of-magnitude
//!   numbers for a Linux 4.15 kernel on the paper's Xeon Silver 4110;
//! * the 2.1 GHz clock frequency of the evaluation machine (§7.1), used to
//!   convert the paper's baseline seconds into baseline cycles.
//!
//! Overheads reported by the benchmark harness are ratios of *added* cycles
//! over baseline cycles, so only relative magnitudes matter; the model is
//! deliberately simple and fully documented so that every number in
//! EXPERIMENTS.md can be traced to a constant here.

use serde::{Deserialize, Serialize};

/// A number of simulated CPU cycles.
pub type CycleCount = u64;

/// Clock frequency of the paper's evaluation machine (§7.1): 2.1 GHz.
pub const PAPER_CPU_HZ: f64 = 2.1e9;

/// Cycle costs for every operation the simulator models.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Writing PKRU with `WRPKRU` (§2.2: "around 20 cycles").
    pub wrpkru: CycleCount,
    /// Reading PKRU with `RDPKRU` (§2.2: "less than 1 cycle"; we charge 1).
    pub rdpkru: CycleCount,
    /// Reading the timestamp counter with `RDTSCP`.
    pub rdtscp: CycleCount,
    /// A `pkey_mprotect()` system call (page-table walk + key update).
    pub pkey_mprotect: CycleCount,
    /// Marginal cost of each additional page range folded into one grouped
    /// `pkey_mprotect` call (the libmpk-style batched update used by
    /// key-cache evictions and revivals): syscall entry and TLB shootdown
    /// are paid once for the group, so each extra range pays only its
    /// page-table walk.
    pub pkey_mprotect_batch_extra: CycleCount,
    /// Revoking a hardware key from one *other* thread when the key cache
    /// evicts a key that is still held (libmpk-style key synchronization:
    /// an IPI plus the remote PKRU fix-up).
    pub pkey_sync: CycleCount,
    /// An `mmap()` system call creating one shared mapping.
    pub mmap: CycleCount,
    /// Marginal cost of each additional page folded into one grouped
    /// `mmap` call (magazine refills provision a whole batch of slab
    /// pages at once: syscall entry and VMA bookkeeping are paid once,
    /// each extra page pays only its PTE install).
    pub mmap_batch_extra: CycleCount,
    /// An `munmap()` system call.
    pub munmap: CycleCount,
    /// Marginal cost of each additional page folded into one grouped
    /// `munmap` call (magazine retirement unmaps dead slab pages in
    /// batches; the TLB shootdown IPI is paid once for the group).
    pub munmap_batch_extra: CycleCount,
    /// An `ftruncate()` call growing or shrinking the in-memory file.
    pub ftruncate: CycleCount,
    /// End-to-end #GP delivery + handler entry/exit (§5.5: 24,000 cycles).
    pub fault_handling: CycleCount,
    /// An ordinary data access that hits the dTLB and cache.
    pub mem_access: CycleCount,
    /// Extra penalty for a dTLB miss (hardware page walk).
    pub dtlb_miss: CycleCount,
    /// Uncontended lock or unlock operation (pthread fast path).
    pub lock_op: CycleCount,
    /// One hash/tree map operation inside Kard's runtime (section-object
    /// and key-section map lookups and updates, §5.4).
    pub map_op: CycleCount,
    /// Atomic read-modify-write used by Kard's internal synchronization.
    pub atomic_op: CycleCount,
    /// Per-contender cost of a contended lock hand-off on Kard's internal
    /// runtime lock (cache-line transfer + wakeup). Contention grows
    /// superlinearly with threads; the detector charges
    /// `contended_handoff x (t-1) x sqrt(t-1)` per section entry, which
    /// reproduces the paper's §7.4 scaling curve.
    pub contended_handoff: CycleCount,
    /// Baseline heap allocation (glibc malloc fast path), used to compare
    /// against Kard's mmap-per-allocation allocator (§6).
    pub malloc_baseline: CycleCount,
    /// Per-access cost of TSan-style compiler instrumentation (shadow-memory
    /// lookup + vector-clock work). Chosen so that access-dominated
    /// workloads slow down by roughly 7x under the TSan model (§1).
    pub tsan_per_access: CycleCount,
}

impl CostModel {
    /// The default model documented in DESIGN.md.
    #[must_use]
    pub fn paper() -> CostModel {
        CostModel {
            wrpkru: 20,
            rdpkru: 1,
            rdtscp: 30,
            pkey_mprotect: 1_200,
            pkey_mprotect_batch_extra: 300,
            pkey_sync: 3_000,
            mmap: 2_500,
            mmap_batch_extra: 400,
            munmap: 1_800,
            munmap_batch_extra: 250,
            ftruncate: 1_500,
            fault_handling: 24_000,
            mem_access: 4,
            dtlb_miss: 36,
            lock_op: 50,
            map_op: 70,
            atomic_op: 30,
            contended_handoff: 100,
            malloc_baseline: 120,
            tsan_per_access: 110,
        }
    }

    /// Convert seconds on the paper's 2.1 GHz machine to cycles.
    #[must_use]
    pub fn seconds_to_cycles(seconds: f64) -> CycleCount {
        (seconds * PAPER_CPU_HZ) as CycleCount
    }

    /// Convert simulated cycles back to seconds on the paper's machine.
    #[must_use]
    pub fn cycles_to_seconds(cycles: CycleCount) -> f64 {
        cycles as f64 / PAPER_CPU_HZ
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_cited_values() {
        let m = CostModel::paper();
        assert_eq!(m.wrpkru, 20, "§2.2: WRPKRU takes around 20 cycles");
        assert_eq!(m.rdpkru, 1, "§2.2: RDPKRU takes less than 1 cycle");
        assert_eq!(m.fault_handling, 24_000, "§5.5: average fault delay");
    }

    #[test]
    fn seconds_cycles_round_trip() {
        let cycles = CostModel::seconds_to_cycles(4.96);
        let secs = CostModel::cycles_to_seconds(cycles);
        assert!((secs - 4.96).abs() < 1e-6);
    }

    #[test]
    fn fault_dwarfs_wrpkru() {
        // The design rationale for proactive key acquisition: faults are
        // three orders of magnitude more expensive than WRPKRU.
        let m = CostModel::paper();
        assert!(m.fault_handling > 1000 * m.wrpkru);
    }

    #[test]
    fn serializes_for_experiment_reports() {
        let m = CostModel::paper();
        let json = serde_json::to_string(&m).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
