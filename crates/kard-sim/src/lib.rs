//! Simulated Intel Memory Protection Keys (MPK) substrate.
//!
//! The Kard paper (ASPLOS 2021) detects data races by protecting shared
//! objects with MPK protection keys and trapping the resulting General
//! Protection Faults (#GP). This crate provides a software model of the
//! architectural surface Kard consumes:
//!
//! * a per-thread [`Pkru`] register with two permission bits per key
//!   (access-disable and write-disable), updated with [`Machine::wrpkru`]
//!   (≈ 20 cycles, no TLB flush) and read with [`Machine::rdpkru`]
//!   (≈ 1 cycle);
//! * a page table ([`AddressSpace`]) tagging each 4 KiB virtual page with a
//!   [`ProtectionKey`], updated with [`Machine::pkey_mprotect`];
//! * simulated physical memory ([`PhysMemory`]) behaving like a
//!   `memfd_create` in-memory file: virtual pages may share physical frames
//!   (`MAP_SHARED`), the file is grown/shrunk with `ftruncate`, and resident
//!   set size is tracked for the paper's memory-overhead experiments;
//! * a per-thread set-associative data TLB ([`Tlb`]) so unique-page
//!   allocation pressure (§7.2 of the paper) is measurable;
//! * a virtual time-stamp counter (`RDTSCP` analog) and a cycle-cost module
//!   ([`cost`]) whose constants come from the paper and from the libmpk /
//!   ERIM measurements the paper cites.
//!
//! Every memory access is checked against the accessing thread's PKRU; a
//! violation produces a [`GpFault`] describing the faulting address, access
//! kind, protection key, and code site — exactly the information Kard's
//! fault handler receives from the kernel on real hardware.
//!
//! # Why a simulator
//!
//! The reproduction machine exposes no `pku` CPUID flag, so native MPK is
//! unavailable. The detector in `kard-core` only depends on the architectural
//! contract modelled here, which keeps the reproduction faithful while making
//! every experiment deterministic.
//!
//! # Example
//!
//! ```
//! use kard_sim::{Machine, MachineConfig, AccessKind, Permission, CodeSite};
//!
//! let machine = Machine::new(MachineConfig::default());
//! let t0 = machine.register_thread();
//! let layout = machine.key_layout();
//!
//! // Map one page and protect it with the "not accessed" key.
//! let page = machine.mmap_one_page().expect("address space exhausted");
//! machine.pkey_mprotect_page(page, layout.not_accessed).unwrap();
//!
//! // The thread starts with access to every key, so the read succeeds.
//! let addr = page.base_addr();
//! assert!(machine.access(t0, addr, AccessKind::Read, CodeSite(1)).is_ok());
//!
//! // Revoke the key and the same read raises a simulated #GP.
//! let mut pkru = machine.rdpkru(t0);
//! pkru.set_permission(layout.not_accessed, Permission::NoAccess);
//! machine.wrpkru(t0, pkru);
//! let fault = machine
//!     .access(t0, addr, AccessKind::Read, CodeSite(2))
//!     .unwrap_err();
//! assert_eq!(fault.pkey, layout.not_accessed);
//! ```

#![deny(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod fault;
pub mod keys;
pub mod mem;
pub mod native;
pub mod page_table;
pub mod phys;
pub mod pkru;
pub mod tlb;

pub use cost::{CostModel, CycleCount};
pub use cpu::{Machine, MachineConfig, MachineCounters, ProtectionMechanism, ThreadId};
pub use fault::{AccessKind, CodeSite, GpFault};
pub use keys::{KeyLayout, ProtectionKey};
pub use mem::{PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};
pub use native::{probe_mpk, MpkSupport};
pub use page_table::{dense_page_index, AddressSpace, MapError, Mapping, ProtectError, MMAP_BASE_PAGE};
pub use phys::{MemStats, PhysMemory};
pub use pkru::{Permission, Pkru};
pub use tlb::{Tlb, TlbConfig, TlbStats};
