//! A set-associative data-TLB model.
//!
//! Kard's unique-page allocator spreads objects over many more virtual pages
//! than a native allocator would, which raises dTLB pressure — the paper
//! calls this out as one of the three performance factors (§7.2) and reports
//! per-benchmark dTLB miss rates in Table 3. The simulator attaches one
//! [`Tlb`] to each thread (private L1 dTLB, as on the Xeon Silver 4110) and
//! records hit/miss statistics.
//!
//! The replacement policy is LRU within each set, which is close enough to
//! the pseudo-LRU used by real cores for miss-*rate* reproduction.

use crate::keys::ProtectionKey;
use crate::mem::VirtPage;
use serde::{Deserialize, Serialize};

/// Geometry of the TLB.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity (entries per set).
    pub ways: usize,
}

impl TlbConfig {
    /// 64-entry 4-way L1 dTLB, matching Skylake-SP 4 KiB-page dTLB geometry.
    #[must_use]
    pub fn skylake_l1d() -> TlbConfig {
        TlbConfig {
            entries: 64,
            ways: 4,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::skylake_l1d()
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (page walk required).
    pub misses: u64,
}

impl TlbStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when no lookups happened.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }

    /// Accumulate another thread's counters (for whole-machine rates).
    pub fn merge(&mut self, other: TlbStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A set-associative TLB with per-set LRU replacement.
///
/// Each entry caches the page's protection key alongside the
/// translation, the way real PTEs carry the pkey bits into the TLB: a
/// hit lets [`crate::Machine::access`] check PKU rights without walking
/// the (shared, locked) page table at all. Key retags and unmaps
/// invalidate the affected entries, so a cached key is never staler than
/// hardware's would be between shootdowns.
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    /// `sets[s]` holds up to `ways` entries, most recently used last.
    sets: Vec<Vec<(VirtPage, ProtectionKey)>>,
    stats: TlbStats,
}

impl Tlb {
    /// An empty TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    #[must_use]
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.ways > 0, "TLB needs at least one way");
        assert!(
            config.entries > 0 && config.entries.is_multiple_of(config.ways),
            "TLB entries must be a positive multiple of ways"
        );
        let num_sets = config.entries / config.ways;
        Tlb {
            config,
            sets: vec![Vec::with_capacity(config.ways); num_sets],
            stats: TlbStats::default(),
        }
    }

    fn set_index(&self, page: VirtPage) -> usize {
        (page.0 as usize) % self.sets.len()
    }

    /// Probe for `page`: on a hit, refresh its LRU position and return
    /// the cached protection key; a miss only records the miss — the
    /// caller walks the page table and [`Tlb::install`]s the result.
    pub fn probe(&mut self, page: VirtPage) -> Option<ProtectionKey> {
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&(p, _)| p == page) {
            self.stats.hits += 1;
            // Refresh LRU position (already freshest on a repeat hit).
            if pos + 1 != set.len() {
                let entry = set.remove(pos);
                set.push(entry);
            }
            Some(set[set.len() - 1].1)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Install a walked translation, evicting the least recently used
    /// entry of its set if needed. No statistics change — the miss was
    /// counted by the [`Tlb::probe`] that preceded the walk.
    pub fn install(&mut self, page: VirtPage, pkey: ProtectionKey) {
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        if set.len() == self.config.ways {
            set.remove(0);
        }
        set.push((page, pkey));
    }

    /// Look up `page`; returns `true` on hit. A miss installs the page
    /// (with a placeholder key — use [`Tlb::probe`]/[`Tlb::install`] when
    /// the cached key matters), evicting the least recently used entry of
    /// its set if needed.
    pub fn lookup(&mut self, page: VirtPage) -> bool {
        match self.probe(page) {
            Some(_) => true,
            None => {
                self.install(page, ProtectionKey(0));
                false
            }
        }
    }

    /// Invalidate one page (on `pkey_mprotect`/`munmap` of that page).
    pub fn invalidate(&mut self, page: VirtPage) {
        let idx = self.set_index(page);
        self.sets[idx].retain(|&(p, _)| p != page);
    }

    /// Invalidate everything (full TLB flush, as plain `mprotect` causes —
    /// the cost MPK's `WRPKRU` avoids).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Geometry.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.config
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(TlbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig { entries: 4, ways: 2 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut tlb = tiny();
        assert!(!tlb.lookup(VirtPage(1)));
        assert!(tlb.lookup(VirtPage(1)));
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut tlb = tiny(); // 2 sets of 2 ways; even pages -> set 0.
        assert!(!tlb.lookup(VirtPage(0)));
        assert!(!tlb.lookup(VirtPage(2)));
        assert!(tlb.lookup(VirtPage(0))); // Refresh page 0; page 2 is now LRU.
        assert!(!tlb.lookup(VirtPage(4))); // Evicts page 2.
        assert!(tlb.lookup(VirtPage(0)), "page 0 must have survived");
        assert!(!tlb.lookup(VirtPage(2)), "page 2 must have been evicted");
    }

    #[test]
    fn invalidate_removes_single_page() {
        let mut tlb = tiny();
        tlb.lookup(VirtPage(0));
        tlb.lookup(VirtPage(1));
        tlb.invalidate(VirtPage(0));
        assert!(!tlb.lookup(VirtPage(0)), "invalidated page must miss");
        assert!(tlb.lookup(VirtPage(1)), "other pages must survive");
    }

    #[test]
    fn flush_clears_everything() {
        let mut tlb = tiny();
        tlb.lookup(VirtPage(0));
        tlb.lookup(VirtPage(1));
        tlb.flush();
        assert!(!tlb.lookup(VirtPage(0)));
        assert!(!tlb.lookup(VirtPage(1)));
    }

    #[test]
    fn miss_rate_reflects_working_set_vs_capacity() {
        // Working set within capacity: near-zero steady-state misses.
        let mut small = Tlb::new(TlbConfig { entries: 64, ways: 4 });
        for _ in 0..100 {
            for p in 0..32 {
                small.lookup(VirtPage(p));
            }
        }
        assert!(small.stats().miss_rate() < 0.02);

        // Working set far beyond capacity: thrashes.
        let mut big = Tlb::new(TlbConfig { entries: 64, ways: 4 });
        for _ in 0..10 {
            for p in 0..4096 {
                big.lookup(VirtPage(p));
            }
        }
        assert!(big.stats().miss_rate() > 0.9);
    }

    #[test]
    fn stats_merge() {
        let mut a = TlbStats { hits: 3, misses: 1 };
        a.merge(TlbStats { hits: 1, misses: 3 });
        assert_eq!(a, TlbStats { hits: 4, misses: 4 });
        assert!((a.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_miss_rate_is_zero() {
        assert_eq!(TlbStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(TlbConfig { entries: 5, ways: 2 });
    }
}
