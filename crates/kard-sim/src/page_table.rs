//! The simulated page table: virtual page → (physical frame, protection key).
//!
//! Real MPK stores the 4-bit protection key in each page-table entry and
//! changes it with the `pkey_mprotect()` system call. [`AddressSpace`]
//! models exactly that: a map from [`VirtPage`] to [`Mapping`], a bump
//! allocator of fresh virtual pages (the simulated `mmap` picks addresses),
//! and [`AddressSpace::pkey_mprotect`] to retag pages.

use crate::keys::ProtectionKey;
use crate::mem::{PhysFrame, VirtAddr, VirtPage};
use std::collections::BTreeMap;
use std::fmt;

/// One page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// Physical frame of the in-memory file backing this page.
    pub frame: PhysFrame,
    /// Protection key tagged on this page.
    pub pkey: ProtectionKey,
    /// PTE accessed bit: set on first touch. Linux counts every populated
    /// PTE toward a process's RSS — *per virtual page*, even when several
    /// shared mappings alias one physical frame. This is exactly why the
    /// paper's RSS overheads over-estimate Kard's physical footprint (§6).
    pub accessed: bool,
}

/// Error returned when a mapping operation fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The page is already mapped.
    AlreadyMapped(VirtPage),
    /// The page is not mapped.
    NotMapped(VirtPage),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::AlreadyMapped(p) => write!(f, "page {p:?} is already mapped"),
            MapError::NotMapped(p) => write!(f, "page {p:?} is not mapped"),
        }
    }
}

impl std::error::Error for MapError {}

/// Error returned by [`AddressSpace::pkey_mprotect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtectError {
    /// A page in the requested range is not mapped (`ENOMEM` analog).
    NotMapped(VirtPage),
    /// The key is outside the hardware's key range (`EINVAL` analog).
    InvalidKey(ProtectionKey),
}

impl fmt::Display for ProtectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectError::NotMapped(p) => write!(f, "page {p:?} is not mapped"),
            ProtectError::InvalidKey(k) => write!(f, "protection key {k} is invalid"),
        }
    }
}

impl std::error::Error for ProtectError {}

/// The simulated process address space.
///
/// Virtual pages are handed out by a bump allocator starting at a
/// conventionally heap-like base address. Pages are never reused once
/// unmapped (matching the paper's current implementation, which defers
/// virtual-page recycling to future work, §6).
pub struct AddressSpace {
    table: BTreeMap<VirtPage, Mapping>,
    next_page: VirtPage,
    total_keys: u16,
    accessed_pages: u64,
    peak_accessed_pages: u64,
}

/// Base of the simulated mmap region (arbitrary, heap-like). Public so
/// that allocator-side indexes can key pages densely from this origin
/// (reservations are a bump allocation starting here).
pub const MMAP_BASE_PAGE: VirtPage = VirtPage(0x0007_f000_0000 >> 2);

/// Dense index of `page` within the simulated mmap region: pages are a
/// bump sequence from [`MMAP_BASE_PAGE`], so `page - MMAP_BASE_PAGE` keys
/// flat side-metadata tables (the allocator's page→object index, the
/// detector's domain/key/hotness metadata) with no hashing. `None` means
/// the page is below the region base and cannot be a reservation.
#[must_use]
pub fn dense_page_index(page: VirtPage) -> Option<u64> {
    page.0.checked_sub(MMAP_BASE_PAGE.0)
}

impl AddressSpace {
    /// An empty address space for hardware with `total_keys` keys.
    #[must_use]
    pub fn new(total_keys: u16) -> AddressSpace {
        AddressSpace {
            table: BTreeMap::new(),
            next_page: MMAP_BASE_PAGE,
            total_keys,
            accessed_pages: 0,
            peak_accessed_pages: 0,
        }
    }

    /// Reserve `count` fresh, contiguous virtual pages without mapping them.
    pub fn reserve_pages(&mut self, count: u64) -> VirtPage {
        let first = self.next_page;
        self.next_page = self.next_page.add(count);
        first
    }

    /// Map `page` to `frame` with the default protection key
    /// (`mmap(MAP_SHARED | MAP_FIXED)` onto the in-memory file).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::AlreadyMapped`] if the page is mapped.
    pub fn map(&mut self, page: VirtPage, frame: PhysFrame) -> Result<(), MapError> {
        if self.table.contains_key(&page) {
            return Err(MapError::AlreadyMapped(page));
        }
        self.table.insert(
            page,
            Mapping {
                frame,
                pkey: ProtectionKey::DEFAULT,
                accessed: false,
            },
        );
        Ok(())
    }

    /// Remove the mapping for `page`, returning it (`munmap`).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NotMapped`] if the page is not mapped.
    pub fn unmap(&mut self, page: VirtPage) -> Result<Mapping, MapError> {
        let mapping = self.table.remove(&page).ok_or(MapError::NotMapped(page))?;
        if mapping.accessed {
            self.accessed_pages -= 1;
        }
        Ok(mapping)
    }

    /// Set the PTE accessed bit for `page` (first touch populates the PTE).
    pub fn mark_accessed(&mut self, page: VirtPage) {
        if let Some(m) = self.table.get_mut(&page) {
            if !m.accessed {
                m.accessed = true;
                self.accessed_pages += 1;
                self.peak_accessed_pages = self.peak_accessed_pages.max(self.accessed_pages);
            }
        }
    }

    /// Bytes Linux would report as RSS: populated PTEs x page size. Shared
    /// mappings of one frame each count once per *virtual* page.
    #[must_use]
    pub fn linux_rss_bytes(&self) -> u64 {
        self.accessed_pages * crate::mem::PAGE_SIZE
    }

    /// Peak of [`AddressSpace::linux_rss_bytes`] over the run.
    #[must_use]
    pub fn peak_linux_rss_bytes(&self) -> u64 {
        self.peak_accessed_pages * crate::mem::PAGE_SIZE
    }

    /// Translate an address to its page-table entry.
    #[must_use]
    pub fn translate(&self, addr: VirtAddr) -> Option<Mapping> {
        self.table.get(&addr.page()).copied()
    }

    /// Look up the entry for a page.
    #[must_use]
    pub fn entry(&self, page: VirtPage) -> Option<Mapping> {
        self.table.get(&page).copied()
    }

    /// Retag `count` pages starting at `first` with `key`
    /// (the `pkey_mprotect()` system call).
    ///
    /// # Errors
    ///
    /// Returns an error if the key is invalid or a page is unmapped; no
    /// partial update is applied in the error case.
    pub fn pkey_mprotect(
        &mut self,
        first: VirtPage,
        count: u64,
        key: ProtectionKey,
    ) -> Result<(), ProtectError> {
        if key.0 >= self.total_keys {
            return Err(ProtectError::InvalidKey(key));
        }
        for i in 0..count {
            if !self.table.contains_key(&first.add(i)) {
                return Err(ProtectError::NotMapped(first.add(i)));
            }
        }
        for i in 0..count {
            self.table
                .get_mut(&first.add(i))
                .expect("checked above")
                .pkey = key;
        }
        Ok(())
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("mapped_pages", &self.table.len())
            .field("next_page", &self.next_page)
            .field("total_keys", &self.total_keys)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_page_index_offsets_from_the_region_base() {
        assert_eq!(dense_page_index(MMAP_BASE_PAGE), Some(0));
        assert_eq!(dense_page_index(MMAP_BASE_PAGE.add(17)), Some(17));
        assert_eq!(dense_page_index(VirtPage(0)), None, "below the region");
    }

    #[test]
    fn map_translate_unmap() {
        let mut aspace = AddressSpace::new(16);
        let page = aspace.reserve_pages(1);
        aspace.map(page, PhysFrame(3)).unwrap();
        let m = aspace.translate(page.base_addr().offset(100)).unwrap();
        assert_eq!(m.frame, PhysFrame(3));
        assert_eq!(m.pkey, ProtectionKey::DEFAULT);
        aspace.unmap(page).unwrap();
        assert!(aspace.translate(page.base_addr()).is_none());
    }

    #[test]
    fn double_map_rejected() {
        let mut aspace = AddressSpace::new(16);
        let page = aspace.reserve_pages(1);
        aspace.map(page, PhysFrame(0)).unwrap();
        assert_eq!(
            aspace.map(page, PhysFrame(1)),
            Err(MapError::AlreadyMapped(page))
        );
    }

    #[test]
    fn unmap_unmapped_rejected() {
        let mut aspace = AddressSpace::new(16);
        let page = aspace.reserve_pages(1);
        assert_eq!(aspace.unmap(page), Err(MapError::NotMapped(page)));
    }

    #[test]
    fn reserved_pages_are_contiguous_and_unique() {
        let mut aspace = AddressSpace::new(16);
        let a = aspace.reserve_pages(4);
        let b = aspace.reserve_pages(2);
        assert_eq!(b, a.add(4));
        let c = aspace.reserve_pages(1);
        assert_eq!(c, b.add(2));
    }

    #[test]
    fn pkey_mprotect_retags_range() {
        let mut aspace = AddressSpace::new(16);
        let first = aspace.reserve_pages(3);
        for i in 0..3 {
            aspace.map(first.add(i), PhysFrame(i)).unwrap();
        }
        aspace.pkey_mprotect(first, 3, ProtectionKey(7)).unwrap();
        for i in 0..3 {
            assert_eq!(aspace.entry(first.add(i)).unwrap().pkey, ProtectionKey(7));
        }
    }

    #[test]
    fn pkey_mprotect_invalid_key() {
        let mut aspace = AddressSpace::new(16);
        let page = aspace.reserve_pages(1);
        aspace.map(page, PhysFrame(0)).unwrap();
        assert_eq!(
            aspace.pkey_mprotect(page, 1, ProtectionKey(16)),
            Err(ProtectError::InvalidKey(ProtectionKey(16)))
        );
    }

    #[test]
    fn pkey_mprotect_unmapped_page_is_atomic() {
        let mut aspace = AddressSpace::new(16);
        let first = aspace.reserve_pages(2);
        aspace.map(first, PhysFrame(0)).unwrap();
        // Second page unmapped: the call must fail without retagging page 1.
        assert_eq!(
            aspace.pkey_mprotect(first, 2, ProtectionKey(5)),
            Err(ProtectError::NotMapped(first.add(1)))
        );
        assert_eq!(
            aspace.entry(first).unwrap().pkey,
            ProtectionKey::DEFAULT,
            "failed mprotect must not partially apply"
        );
    }
}
