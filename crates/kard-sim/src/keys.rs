//! Protection keys and the fixed key layout Kard imposes on them.
//!
//! Intel MPK provides 16 keys (`k0`..`k15`). Kard (§5.2 of the paper)
//! reserves:
//!
//! * `k0` — the default key for non-sharable memory (MPK reserves it for
//!   backward compatibility, so every thread always has full access);
//! * `k14` — the Read-only domain key (`k_ro`);
//! * `k15` — the Not-accessed domain key (`k_na`);
//! * `k1`..`k13` — the Read-write domain pool.
//!
//! The paper's §8 discusses future hardware with up to 1000 keys, which Kard
//! could use to eliminate key sharing. [`KeyLayout::with_total_keys`]
//! generalizes the layout so that ablation benchmarks can vary the pool size.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of protection keys provided by current Intel MPK hardware.
pub const MPK_NUM_KEYS: u16 = 16;

/// An MPK protection key.
///
/// Keys are small integers; on real hardware they live in bits 62:59 of each
/// page-table entry. The simulator supports more than 16 keys for the
/// paper's "advanced hardware" ablation (§8), hence the `u16` representation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ProtectionKey(pub u16);

impl ProtectionKey {
    /// The default key, `k0`, which protects all memory that Kard does not
    /// manage (thread-local data, mutexes, program text).
    pub const DEFAULT: ProtectionKey = ProtectionKey(0);

    /// Raw key index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProtectionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for ProtectionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Kard's assignment of roles to protection keys (§5.2).
///
/// ```
/// use kard_sim::keys::KeyLayout;
///
/// let mpk = KeyLayout::mpk();
/// assert_eq!(mpk.not_accessed.index(), 15);
/// assert_eq!(mpk.read_only.index(), 14);
/// assert_eq!(mpk.read_write_pool().count(), 13);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KeyLayout {
    /// Total number of keys the hardware provides (16 on current MPK).
    pub total_keys: u16,
    /// The default key `k0` (always accessible to every thread).
    pub default: ProtectionKey,
    /// The Read-only domain key (`k14` on MPK).
    pub read_only: ProtectionKey,
    /// The Not-accessed domain key (`k15` on MPK).
    pub not_accessed: ProtectionKey,
}

impl KeyLayout {
    /// The layout for current Intel MPK hardware: 16 keys, `k14` = read-only
    /// domain, `k15` = not-accessed domain, `k1`..`k13` = read-write pool.
    #[must_use]
    pub fn mpk() -> KeyLayout {
        KeyLayout::with_total_keys(MPK_NUM_KEYS)
    }

    /// A layout for hypothetical hardware with `total_keys` keys. The two
    /// highest keys play the read-only and not-accessed roles, mirroring the
    /// MPK layout.
    ///
    /// # Panics
    ///
    /// Panics if `total_keys < 4`: Kard needs the default key, the two
    /// domain keys, and at least one read-write pool key to function.
    #[must_use]
    pub fn with_total_keys(total_keys: u16) -> KeyLayout {
        assert!(
            total_keys >= 4,
            "Kard requires at least 4 protection keys, got {total_keys}"
        );
        KeyLayout {
            total_keys,
            default: ProtectionKey::DEFAULT,
            read_only: ProtectionKey(total_keys - 2),
            not_accessed: ProtectionKey(total_keys - 1),
        }
    }

    /// Keys available for the Read-write domain (`k1`..`k13` on MPK).
    pub fn read_write_pool(&self) -> impl Iterator<Item = ProtectionKey> {
        (1..self.total_keys - 2).map(ProtectionKey)
    }

    /// Number of keys in the read-write pool.
    #[must_use]
    pub fn read_write_pool_len(&self) -> usize {
        usize::from(self.total_keys) - 3
    }

    /// Whether `key` belongs to the read-write pool.
    #[must_use]
    pub fn is_read_write_key(&self, key: ProtectionKey) -> bool {
        key.0 >= 1 && key.0 < self.total_keys - 2
    }

    /// Whether `key` is valid under this layout.
    #[must_use]
    pub fn contains(&self, key: ProtectionKey) -> bool {
        key.0 < self.total_keys
    }
}

impl Default for KeyLayout {
    fn default() -> Self {
        KeyLayout::mpk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpk_layout_matches_paper() {
        let layout = KeyLayout::mpk();
        assert_eq!(layout.total_keys, 16);
        assert_eq!(layout.default, ProtectionKey(0));
        assert_eq!(layout.read_only, ProtectionKey(14));
        assert_eq!(layout.not_accessed, ProtectionKey(15));
        let pool: Vec<_> = layout.read_write_pool().collect();
        assert_eq!(pool.first(), Some(&ProtectionKey(1)));
        assert_eq!(pool.last(), Some(&ProtectionKey(13)));
        assert_eq!(pool.len(), 13);
        assert_eq!(layout.read_write_pool_len(), 13);
    }

    #[test]
    fn pool_membership() {
        let layout = KeyLayout::mpk();
        assert!(!layout.is_read_write_key(ProtectionKey(0)));
        assert!(layout.is_read_write_key(ProtectionKey(1)));
        assert!(layout.is_read_write_key(ProtectionKey(13)));
        assert!(!layout.is_read_write_key(ProtectionKey(14)));
        assert!(!layout.is_read_write_key(ProtectionKey(15)));
    }

    #[test]
    fn advanced_hardware_layout() {
        // §8: proposals such as Donky support ~1000 keys.
        let layout = KeyLayout::with_total_keys(1024);
        assert_eq!(layout.read_only, ProtectionKey(1022));
        assert_eq!(layout.not_accessed, ProtectionKey(1023));
        assert_eq!(layout.read_write_pool_len(), 1021);
        assert!(layout.contains(ProtectionKey(1023)));
        assert!(!layout.contains(ProtectionKey(1024)));
    }

    #[test]
    #[should_panic(expected = "at least 4 protection keys")]
    fn tiny_layout_rejected() {
        let _ = KeyLayout::with_total_keys(3);
    }

    #[test]
    fn key_formatting() {
        assert_eq!(ProtectionKey(14).to_string(), "k14");
        assert_eq!(format!("{:?}", ProtectionKey(3)), "k3");
    }
}
