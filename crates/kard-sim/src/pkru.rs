//! The per-thread PKRU register model.
//!
//! On x86, PKRU is a 32-bit thread-local register with two bits per key:
//! `AD` (access disable, bit `2k`) and `WD` (write disable, bit `2k + 1`).
//! The simulator generalizes the register to an arbitrary number of keys so
//! the "advanced hardware" ablation (paper §8) can model up to 1024 keys,
//! but [`Pkru::to_raw_u32`] recovers the authentic encoding for 16-key MPK.

use crate::keys::{KeyLayout, ProtectionKey};
use crate::fault::AccessKind;
use std::fmt;

/// Per-key permission, the decoded form of the two PKRU bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Permission {
    /// `AD = 1`: neither reads nor writes are allowed.
    NoAccess,
    /// `AD = 0, WD = 1`: reads allowed, writes disallowed.
    ReadOnly,
    /// `AD = 0, WD = 0`: reads and writes allowed.
    ReadWrite,
}

impl Permission {
    /// Whether this permission admits the given access kind.
    #[must_use]
    pub fn allows(self, kind: AccessKind) -> bool {
        match (self, kind) {
            (Permission::NoAccess, _) => false,
            (Permission::ReadOnly, AccessKind::Read) => true,
            (Permission::ReadOnly, AccessKind::Write) => false,
            (Permission::ReadWrite, _) => true,
        }
    }
}

/// A snapshot of a thread's protection-key rights register.
///
/// `Pkru` is a value type: [`crate::Machine::wrpkru`] installs a snapshot and
/// [`crate::Machine::rdpkru`] returns one, mirroring the real instructions.
///
/// ```
/// use kard_sim::{Pkru, Permission, ProtectionKey, AccessKind};
/// use kard_sim::keys::KeyLayout;
///
/// let layout = KeyLayout::mpk();
/// let mut pkru = Pkru::allow_all(&layout);
/// pkru.set_permission(ProtectionKey(3), Permission::ReadOnly);
/// assert!(pkru.allows(ProtectionKey(3), AccessKind::Read));
/// assert!(!pkru.allows(ProtectionKey(3), AccessKind::Write));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pkru {
    words: Words,
    num_keys: u16,
}

/// Backing storage for the register bits: two bits per key, AD in the
/// even bit and WD in the odd bit, packed little-endian into 64-bit
/// words.
///
/// Registers covering up to 64 keys — real 16-key MPK and every
/// plausible near-term hardware — live inline, so the snapshot copies
/// the detector takes on each section entry (`rdpkru`, the saved frame
/// register, the `wrpkru` install) are plain 24-byte memcpys instead of
/// heap allocations. Only the §8 wide-register ablation (up to 1024
/// keys) spills to the heap.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Words {
    Inline([u64; 2]),
    Heap(Vec<u64>),
}

impl Pkru {
    /// A register granting read-write access to every key.
    #[must_use]
    pub fn allow_all(layout: &KeyLayout) -> Pkru {
        let bits = 2 * usize::from(layout.total_keys);
        let num_words = bits.div_ceil(64);
        Pkru {
            words: if num_words <= 2 {
                Words::Inline([0; 2])
            } else {
                Words::Heap(vec![0; num_words])
            },
            num_keys: layout.total_keys,
        }
    }

    /// A register denying all access to every key except the default key
    /// `k0`, which stays read-write (threads must always reach program text,
    /// stacks, and mutexes).
    #[must_use]
    pub fn deny_all_except_default(layout: &KeyLayout) -> Pkru {
        let mut pkru = Pkru::allow_all(layout);
        for raw in 1..layout.total_keys {
            pkru.set_permission(ProtectionKey(raw), Permission::NoAccess);
        }
        pkru
    }

    /// Number of keys this register covers.
    #[must_use]
    pub fn num_keys(&self) -> u16 {
        self.num_keys
    }

    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(words) => words,
            Words::Heap(words) => words,
        }
    }

    fn bit(&self, idx: usize) -> bool {
        (self.words()[idx / 64] >> (idx % 64)) & 1 == 1
    }

    fn set_bit(&mut self, idx: usize, value: bool) {
        let word = match &mut self.words {
            Words::Inline(words) => &mut words[idx / 64],
            Words::Heap(words) => &mut words[idx / 64],
        };
        if value {
            *word |= 1 << (idx % 64);
        } else {
            *word &= !(1 << (idx % 64));
        }
    }

    /// Decoded permission for `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range for this register.
    #[must_use]
    pub fn permission(&self, key: ProtectionKey) -> Permission {
        assert!(key.0 < self.num_keys, "key {key} out of range");
        let ad = self.bit(2 * key.index());
        let wd = self.bit(2 * key.index() + 1);
        match (ad, wd) {
            (true, _) => Permission::NoAccess,
            (false, true) => Permission::ReadOnly,
            (false, false) => Permission::ReadWrite,
        }
    }

    /// Encode `perm` into the two bits for `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range for this register.
    pub fn set_permission(&mut self, key: ProtectionKey, perm: Permission) {
        assert!(key.0 < self.num_keys, "key {key} out of range");
        let (ad, wd) = match perm {
            Permission::NoAccess => (true, true),
            Permission::ReadOnly => (false, true),
            Permission::ReadWrite => (false, false),
        };
        self.set_bit(2 * key.index(), ad);
        self.set_bit(2 * key.index() + 1, wd);
    }

    /// Whether an access of `kind` to memory tagged `key` is permitted.
    #[must_use]
    pub fn allows(&self, key: ProtectionKey, kind: AccessKind) -> bool {
        self.permission(key).allows(kind)
    }

    /// Keys currently held with at least read access, excluding `k0`.
    pub fn held_keys(&self) -> impl Iterator<Item = (ProtectionKey, Permission)> + '_ {
        (1..self.num_keys).filter_map(move |raw| {
            let key = ProtectionKey(raw);
            match self.permission(key) {
                Permission::NoAccess => None,
                perm => Some((key, perm)),
            }
        })
    }

    /// The authentic 32-bit PKRU encoding.
    ///
    /// # Panics
    ///
    /// Panics if the register models more than 16 keys.
    #[must_use]
    pub fn to_raw_u32(&self) -> u32 {
        assert!(
            self.num_keys <= 16,
            "raw PKRU encoding only exists for <= 16 keys"
        );
        self.words()[0] as u32
    }

    /// The register's bits as one word, when they fit (≤ 32 keys) — the
    /// form [`crate::Machine`] keeps per thread so `RDPKRU`/`WRPKRU`
    /// are single atomic operations instead of lock round-trips.
    pub(crate) fn to_bits64(&self) -> Option<u64> {
        (self.num_keys <= 32).then(|| self.words()[0])
    }

    /// Rebuild a register from [`Pkru::to_bits64`] storage.
    pub(crate) fn from_bits64(bits: u64, num_keys: u16) -> Pkru {
        debug_assert!(num_keys <= 32);
        Pkru {
            words: Words::Inline([bits, 0]),
            num_keys,
        }
    }

    /// Permission check straight off the packed [`Pkru::to_bits64`] word:
    /// `AD` in bit `2k`, `WD` in bit `2k + 1`.
    pub(crate) fn bits64_allow(bits: u64, key: ProtectionKey, kind: AccessKind) -> bool {
        let ad = (bits >> (2 * key.index())) & 1 == 1;
        let wd = (bits >> (2 * key.index() + 1)) & 1 == 1;
        !ad && (kind == AccessKind::Read || !wd)
    }
}

impl fmt::Debug for Pkru {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_map();
        for raw in 0..self.num_keys {
            let key = ProtectionKey(raw);
            match self.permission(key) {
                Permission::ReadWrite => {}
                perm => {
                    list.entry(&key, &perm);
                }
            }
        }
        list.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> KeyLayout {
        KeyLayout::mpk()
    }

    #[test]
    fn allow_all_permits_everything() {
        let pkru = Pkru::allow_all(&layout());
        for raw in 0..16 {
            assert_eq!(pkru.permission(ProtectionKey(raw)), Permission::ReadWrite);
        }
        assert_eq!(pkru.to_raw_u32(), 0);
    }

    #[test]
    fn deny_all_keeps_default_key() {
        let pkru = Pkru::deny_all_except_default(&layout());
        assert_eq!(pkru.permission(ProtectionKey(0)), Permission::ReadWrite);
        for raw in 1..16 {
            assert_eq!(pkru.permission(ProtectionKey(raw)), Permission::NoAccess);
        }
    }

    #[test]
    fn raw_encoding_matches_x86_layout() {
        let mut pkru = Pkru::allow_all(&layout());
        // AD for k1 is bit 2, WD for k1 is bit 3.
        pkru.set_permission(ProtectionKey(1), Permission::NoAccess);
        assert_eq!(pkru.to_raw_u32(), 0b1100);
        pkru.set_permission(ProtectionKey(1), Permission::ReadOnly);
        assert_eq!(pkru.to_raw_u32(), 0b1000);
        pkru.set_permission(ProtectionKey(1), Permission::ReadWrite);
        assert_eq!(pkru.to_raw_u32(), 0);
    }

    #[test]
    fn permission_allows_table() {
        assert!(Permission::ReadWrite.allows(AccessKind::Read));
        assert!(Permission::ReadWrite.allows(AccessKind::Write));
        assert!(Permission::ReadOnly.allows(AccessKind::Read));
        assert!(!Permission::ReadOnly.allows(AccessKind::Write));
        assert!(!Permission::NoAccess.allows(AccessKind::Read));
        assert!(!Permission::NoAccess.allows(AccessKind::Write));
    }

    #[test]
    fn held_keys_excludes_default_and_denied() {
        let mut pkru = Pkru::deny_all_except_default(&layout());
        pkru.set_permission(ProtectionKey(5), Permission::ReadOnly);
        pkru.set_permission(ProtectionKey(9), Permission::ReadWrite);
        let held: Vec<_> = pkru.held_keys().collect();
        assert_eq!(
            held,
            vec![
                (ProtectionKey(5), Permission::ReadOnly),
                (ProtectionKey(9), Permission::ReadWrite)
            ]
        );
    }

    #[test]
    fn wide_register_for_advanced_hardware() {
        let wide = KeyLayout::with_total_keys(1024);
        let mut pkru = Pkru::deny_all_except_default(&wide);
        pkru.set_permission(ProtectionKey(1000), Permission::ReadWrite);
        assert_eq!(pkru.permission(ProtectionKey(1000)), Permission::ReadWrite);
        assert_eq!(pkru.permission(ProtectionKey(999)), Permission::NoAccess);
        assert_eq!(pkru.num_keys(), 1024);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        let pkru = Pkru::allow_all(&layout());
        let _ = pkru.permission(ProtectionKey(16));
    }

    #[test]
    fn bits64_round_trip_and_packed_checks() {
        let mut pkru = Pkru::allow_all(&layout());
        pkru.set_permission(ProtectionKey(3), Permission::ReadOnly);
        pkru.set_permission(ProtectionKey(7), Permission::NoAccess);
        let bits = pkru.to_bits64().expect("16-key register packs");
        assert_eq!(Pkru::from_bits64(bits, pkru.num_keys()), pkru);
        for raw in 0..16 {
            let key = ProtectionKey(raw);
            for kind in [AccessKind::Read, AccessKind::Write] {
                assert_eq!(
                    Pkru::bits64_allow(bits, key, kind),
                    pkru.allows(key, kind),
                    "packed check must match the decoded register for {key}/{kind:?}"
                );
            }
        }
    }

    #[test]
    fn bits64_unavailable_for_wide_registers() {
        let wide = Pkru::allow_all(&KeyLayout::with_total_keys(1024));
        assert_eq!(wide.to_bits64(), None);
    }

    #[test]
    fn set_then_get_round_trip() {
        let mut pkru = Pkru::allow_all(&layout());
        for raw in 0..16 {
            for perm in [Permission::NoAccess, Permission::ReadOnly, Permission::ReadWrite] {
                pkru.set_permission(ProtectionKey(raw), perm);
                assert_eq!(pkru.permission(ProtectionKey(raw)), perm);
            }
        }
    }
}
