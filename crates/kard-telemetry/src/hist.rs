//! Log-bucketed latency histograms.
//!
//! libmpk's measurements (PAPERS.md) show MPK-layer operations have heavily
//! skewed per-call costs that averages hide, so the telemetry layer keeps
//! full distributions: 64 power-of-two buckets cover every `u64` cycle
//! count, recording is one relaxed `fetch_add` per bucket plus the running
//! count/sum/min/max — lock-free and allocation-free, safe to call from
//! the fault handler.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (bucket `i` holds values whose bit
/// length is `i`; bucket 0 holds the value zero).
pub const BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram of cycle counts.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length (0 for the value zero).
fn bucket_of(value: u64) -> usize {
    match value.checked_ilog2() {
        Some(log) => log as usize + 1,
        None => 0,
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one value (relaxed atomics only).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Running sum of every recorded value. For the cycle histograms this
    /// is the total cycles charged so far, which is what the overhead
    /// budget controller integrates between drains.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A plain-value summary with estimated percentiles.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            // Rank of the q-quantile (1-based), then the upper bound of the
            // bucket containing that rank, clamped to the observed range.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    let upper = if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
                    return upper.clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            min,
            max,
            mean: sum as f64 / count as f64,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Plain-value snapshot of a [`LatencyHistogram`]. Percentiles are bucket
/// upper bounds (log₂ resolution), clamped to the observed min/max.
/// (De)serializable so the firehose `/statsz` response can carry it over
/// the wire and clients can parse it back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Values recorded.
    pub count: u64,
    /// Smallest value.
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!((s.mean - 25.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_respect_skew() {
        // 90 small values and ten huge outliers: p50 stays small, p99 is
        // pulled into the outlier's bucket — the skew averages hide.
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert!(s.p50 < 200, "median stays near the mass: {}", s.p50);
        assert!(s.p99 >= 500_000, "p99 sees the outlier: {}", s.p99);
        assert!(s.mean > 10_000.0, "the mean is distorted by the outlier");
    }

    #[test]
    fn percentiles_clamp_to_observed_range() {
        let h = LatencyHistogram::new();
        h.record(24_000);
        let s = h.summary();
        assert_eq!((s.p50, s.p95, s.p99), (24_000, 24_000, 24_000));
    }
}
