//! Log-bucketed latency histograms.
//!
//! libmpk's measurements (PAPERS.md) show MPK-layer operations have heavily
//! skewed per-call costs that averages hide, so the telemetry layer keeps
//! full distributions: 64 power-of-two buckets cover every `u64` cycle
//! count, recording is one relaxed `fetch_add` per bucket plus the running
//! count/sum/min/max — lock-free and allocation-free, safe to call from
//! the fault handler.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (bucket `i` holds values whose bit
/// length is `i`; bucket 0 holds the value zero).
pub const BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram of cycle counts.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length (0 for the value zero).
fn bucket_of(value: u64) -> usize {
    match value.checked_ilog2() {
        Some(log) => log as usize + 1,
        None => 0,
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one value (relaxed atomics only).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Running sum of every recorded value. For the cycle histograms this
    /// is the total cycles charged so far, which is what the overhead
    /// budget controller integrates between drains.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A plain-value summary with estimated percentiles.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets = self.bucket_counts();
        HistogramSummary {
            count,
            min,
            max,
            mean: sum as f64 / count as f64,
            p50: quantile_from_buckets(&buckets, 0.50).clamp(min, max),
            p95: quantile_from_buckets(&buckets, 0.95).clamp(min, max),
            p99: quantile_from_buckets(&buckets, 0.99).clamp(min, max),
        }
    }

    /// A relaxed snapshot of the raw per-bucket counts. Drain-side code
    /// diffs two snapshots to get a per-window distribution (the analyzer's
    /// windowed p95s) without disturbing the recording path.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// The q-quantile of a raw bucket-count array: the upper bound of the
/// bucket holding the q-rank. Returns 0 for an empty array. Unlike
/// [`LatencyHistogram::summary`] this has only log₂ resolution (no
/// observed min/max to clamp to), which is fine for comparing windows
/// of the same metric against each other.
#[must_use]
pub fn quantile_from_buckets(buckets: &[u64; BUCKETS], q: f64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    // Rank of the q-quantile (1-based), then the upper bound of the
    // bucket containing that rank.
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
        }
    }
    u64::MAX
}

/// Merge several histograms into one summary: sum the bucket arrays and
/// running aggregates, then take percentiles of the merged distribution.
///
/// This is the only correct way to aggregate percentiles across shards —
/// averaging per-shard p99s produces a number that is not the p99 of
/// anything (a shard with 10× the traffic deserves 10× the weight, and
/// tail mass concentrated in one shard vanishes under an average).
#[must_use]
pub fn merged_summary<'a, I>(hists: I) -> HistogramSummary
where
    I: IntoIterator<Item = &'a LatencyHistogram>,
{
    let mut buckets = [0u64; BUCKETS];
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut min = u64::MAX;
    let mut max = 0u64;
    for h in hists {
        let c = h.count.load(Ordering::Relaxed);
        if c == 0 {
            continue;
        }
        for (acc, b) in buckets.iter_mut().zip(h.buckets.iter()) {
            *acc += b.load(Ordering::Relaxed);
        }
        count += c;
        sum += h.sum.load(Ordering::Relaxed);
        min = min.min(h.min.load(Ordering::Relaxed));
        max = max.max(h.max.load(Ordering::Relaxed));
    }
    if count == 0 {
        return HistogramSummary::default();
    }
    HistogramSummary {
        count,
        min,
        max,
        mean: sum as f64 / count as f64,
        p50: quantile_from_buckets(&buckets, 0.50).clamp(min, max),
        p95: quantile_from_buckets(&buckets, 0.95).clamp(min, max),
        p99: quantile_from_buckets(&buckets, 0.99).clamp(min, max),
    }
}

/// Plain-value snapshot of a [`LatencyHistogram`]. Percentiles are bucket
/// upper bounds (log₂ resolution), clamped to the observed min/max.
/// (De)serializable so the firehose `/statsz` response can carry it over
/// the wire and clients can parse it back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Values recorded.
    pub count: u64,
    /// Smallest value.
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!((s.mean - 25.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_respect_skew() {
        // 90 small values and ten huge outliers: p50 stays small, p99 is
        // pulled into the outlier's bucket — the skew averages hide.
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert!(s.p50 < 200, "median stays near the mass: {}", s.p50);
        assert!(s.p99 >= 500_000, "p99 sees the outlier: {}", s.p99);
        assert!(s.mean > 10_000.0, "the mean is distorted by the outlier");
    }

    #[test]
    fn percentiles_clamp_to_observed_range() {
        let h = LatencyHistogram::new();
        h.record(24_000);
        let s = h.summary();
        assert_eq!((s.p50, s.p95, s.p99), (24_000, 24_000, 24_000));
    }

    #[test]
    fn merged_summary_weights_by_mass_not_by_shard() {
        // Shard A: 1000 fast values. Shard B: 10 slow values. Averaging the
        // two per-shard p99s would claim a global p99 near 500k; the merged
        // distribution knows the slow shard holds under 1% of the mass.
        let a = LatencyHistogram::new();
        for _ in 0..1000 {
            a.record(100);
        }
        let b = LatencyHistogram::new();
        for _ in 0..10 {
            b.record(1_000_000);
        }
        let merged = merged_summary([&a, &b]);
        assert_eq!(merged.count, 1010);
        assert_eq!(merged.min, 100);
        assert_eq!(merged.max, 1_000_000);
        let avg_of_p99s = (a.summary().p99 + b.summary().p99) / 2;
        assert!(avg_of_p99s >= 400_000, "the broken average is huge");
        assert!(
            merged.p99 < 1000,
            "merged p99 stays with the mass: {}",
            merged.p99
        );
        // p-quantiles above the slow shard's share do see the tail.
        let p999 = quantile_from_buckets(&{
            let mut m = a.bucket_counts();
            for (i, v) in b.bucket_counts().iter().enumerate() {
                m[i] += v;
            }
            m
        }, 0.999);
        assert!(p999 >= 500_000, "extreme tail survives the merge: {p999}");
    }

    #[test]
    fn merged_summary_of_empty_histograms_is_default() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        assert_eq!(merged_summary([&a, &b]), HistogramSummary::default());
    }

    #[test]
    fn merged_summary_of_one_matches_summary() {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40, 50_000] {
            h.record(v);
        }
        assert_eq!(merged_summary([&h]), h.summary());
    }
}
