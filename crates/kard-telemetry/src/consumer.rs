//! The unified drain-side observer API.
//!
//! Everything that runs at drain time — trace exporters, the anomaly
//! analyzer, the overhead-budget tick — implements one trait:
//! [`TelemetryConsumer`]. A session drains its rings once and fans the
//! single [`Drained`] batch out to every registered consumer, replacing
//! the previous ad-hoc surface where `drain_telemetry`,
//! `write_trace_files`, and `production_tick` were each wired
//! separately.
//!
//! Consumers run on the collector's side of the telemetry protocol:
//! they are free to allocate, take their own locks, and do I/O. The one
//! contract is that they never touch the recording path — a consumer
//! receives a borrowed batch and borrowed histogram references, nothing
//! that can write back into the rings.

use crate::{Drained, Histograms};
use std::io::Write;

/// Context handed to every consumer alongside the drained batch.
#[derive(Debug)]
pub struct DrainContext<'a> {
    /// Virtual-clock timestamp at drain time.
    pub now: u64,
    /// The live (cumulative) latency histograms. Consumers that want
    /// per-window distributions snapshot bucket counts and diff across
    /// calls, as the analyzer does.
    pub histograms: &'a Histograms,
}

/// A drain-time observer: receives every drained batch, in registration
/// order, from a single ring drain.
pub trait TelemetryConsumer: Send {
    /// Observe one drained batch. `batch.events` is timestamp-sorted;
    /// `batch.dropped` counts ring overflow since the previous drain.
    fn on_drain(&mut self, batch: &Drained, ctx: &DrainContext<'_>);
}

/// Blanket impl so plain closures register as consumers:
/// `builder.observe(|batch, ctx| ...)`.
impl<F> TelemetryConsumer for F
where
    F: FnMut(&Drained, &DrainContext<'_>) + Send,
{
    fn on_drain(&mut self, batch: &Drained, ctx: &DrainContext<'_>) {
        self(batch, ctx);
    }
}

/// A consumer that appends each batch to a writer as JSON-Lines (one
/// event object per line, the [`crate::export::json_lines`] format).
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap a writer. Each drained batch is appended and flushed.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink { writer }
    }

    /// Recover the writer (e.g. to inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> TelemetryConsumer for JsonLinesSink<W> {
    fn on_drain(&mut self, batch: &Drained, _ctx: &DrainContext<'_>) {
        let text = crate::export::json_lines(&batch.events);
        let _ = self.writer.write_all(text.as_bytes());
        let _ = self.writer.flush();
    }
}

/// A consumer that accumulates every batch and renders one Chrome
/// `trace_event` document ([`crate::export::chrome_trace`]) on demand.
/// Chrome traces are whole documents, not streams, so this sink buffers
/// events and the owner calls [`ChromeTraceSink::render`] at the end of
/// the run.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<crate::Event>,
}

impl ChromeTraceSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink::default()
    }

    /// Render everything observed so far as one Chrome trace document.
    #[must_use]
    pub fn render(&self) -> String {
        crate::export::chrome_trace(&self.events)
    }
}

impl TelemetryConsumer for ChromeTraceSink {
    fn on_drain(&mut self, batch: &Drained, _ctx: &DrainContext<'_>) {
        self.events.extend_from_slice(&batch.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind};

    fn batch() -> Drained {
        Drained {
            events: vec![
                Event { tsc: 10, thread: 0, kind: EventKind::SectionEnter, a: 1, b: 1 },
                Event { tsc: 20, thread: 0, kind: EventKind::SectionExit, a: 1, b: 10 },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn closures_are_consumers() {
        let mut seen = 0usize;
        let hists = Histograms::default();
        let ctx = DrainContext { now: 42, histograms: &hists };
        let mut consumer = |b: &Drained, c: &DrainContext<'_>| {
            seen += b.events.len();
            assert_eq!(c.now, 42);
        };
        consumer.on_drain(&batch(), &ctx);
        assert_eq!(seen, 2);
    }

    #[test]
    fn json_lines_sink_appends_batches() {
        let hists = Histograms::default();
        let ctx = DrainContext { now: 0, histograms: &hists };
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.on_drain(&batch(), &ctx);
        sink.on_drain(&batch(), &ctx);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            serde_json::from_str::<serde_json::Value>(line).expect("valid JSON line");
        }
    }

    #[test]
    fn chrome_sink_renders_accumulated_trace() {
        let hists = Histograms::default();
        let ctx = DrainContext { now: 0, histograms: &hists };
        let mut sink = ChromeTraceSink::new();
        sink.on_drain(&batch(), &ctx);
        let text = sink.render();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid trace JSON");
        assert!(v.get("traceEvents").is_some());
    }
}
