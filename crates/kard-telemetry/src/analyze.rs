//! Online anomaly detection over the drained telemetry stream.
//!
//! The analyzer is a pure *drain-side consumer*: it reads each
//! [`Drained`] batch plus relaxed snapshots of the
//! [`Histograms`], reduces them to one
//! [`WindowSample`] of per-window aggregates, and runs two classical
//! streaming techniques over every tracked metric:
//!
//! * an **EWMA baseline** (integer, shift-based) that learns the
//!   workload's normal level while the metric is in control, and
//! * a one-sided **CUSUM change-point detector** that accumulates the
//!   excess of each window over `baseline + slack` (in permille of the
//!   baseline, so one threshold fits metrics of wildly different
//!   magnitudes) and fires when the accumulated drift crosses a
//!   threshold.
//!
//! On a fire the detector *adopts* the new level (`baseline := value`,
//! `cusum := 0`), so a step change raises **exactly one** signal per
//! metric rather than alarming forever; during an excursion the baseline
//! is frozen, so a slow creep still accumulates against the pre-creep
//! level and fires. Both properties are proptested in
//! `tests/anomaly_detection.rs`.
//!
//! Signals are *signals, not truth* (ROADMAP item 5): a
//! [`AnomalySignal`] carries a score, the metric, the window, the
//! suspected thread — evidence for the overhead-budget controller and
//! for the firehose server's per-session attribution, never a verdict.
//! Nothing in this module runs on the recording path: the analyzer owns
//! a plain (untracked) mutex taken only at drain time, and
//! `tests/no_lock_overhead.rs` proves an analyzer-enabled run adds zero
//! detector-lock acquisitions, zero ring writes, and zero allocations to
//! the warmed recording path.

use crate::event::EventKind;
use crate::hist::{quantile_from_buckets, BUCKETS};
use crate::{Drained, Histograms};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Cycles per rate unit: event rates are reported per million
/// virtual-clock cycles so typical workloads land in a human-readable
/// integer range.
pub const RATE_UNIT_CYCLES: u64 = 1_000_000;

/// Which per-window aggregate a detector tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MetricKind {
    /// Faults handled per million cycles (fault-delay histogram count
    /// delta over elapsed virtual time).
    FaultRate = 0,
    /// Per-window p95 of fault-handling delay (cycles, log₂ resolution).
    FaultDelayP95 = 1,
    /// Virtual-key evictions + grouped demotions per million cycles —
    /// the key-cache thrash signature (a working set blowing past the 13
    /// hardware pool keys).
    KeyPressure = 2,
    /// Per-window p95 of critical-section hold time (cycles).
    SectionHoldP95 = 3,
    /// Remote-free pushes per million cycles (cross-thread free traffic).
    RemoteFreeRate = 4,
}

impl MetricKind {
    /// Number of tracked metrics.
    pub const COUNT: usize = 5;

    /// Every metric, in discriminant order.
    pub const ALL: [MetricKind; MetricKind::COUNT] = [
        MetricKind::FaultRate,
        MetricKind::FaultDelayP95,
        MetricKind::KeyPressure,
        MetricKind::SectionHoldP95,
        MetricKind::RemoteFreeRate,
    ];

    /// Decode a raw discriminant, if valid.
    #[must_use]
    pub fn from_raw(raw: u64) -> Option<MetricKind> {
        MetricKind::ALL.get(raw as usize).copied()
    }

    /// Stable snake_case name (used in `/statsz`, `BENCH_anomaly.json`,
    /// and the JSON-Lines exporter).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::FaultRate => "fault_rate",
            MetricKind::FaultDelayP95 => "fault_delay_p95",
            MetricKind::KeyPressure => "key_pressure",
            MetricKind::SectionHoldP95 => "section_hold_p95",
            MetricKind::RemoteFreeRate => "remote_free_rate",
        }
    }
}

/// Sensitivity knobs for every per-metric detector. All integers so the
/// config can ride inside the `Copy + Eq` [`KardConfig`] — see
/// docs/TUNING.md for how each knob trades detection latency against
/// false positives.
///
/// [`KardConfig`]: https://docs.rs/kard-core
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Windows to observe before arming detection. During warmup the
    /// baseline learns and no signal can fire.
    pub warmup_windows: u32,
    /// EWMA weight as a right-shift: the baseline moves toward each
    /// in-control sample by `delta >> ewma_shift` (3 ⇒ weight 1/8).
    pub ewma_shift: u32,
    /// CUSUM fire threshold, in accumulated permille-of-baseline excess.
    pub cusum_threshold_permille: u64,
    /// Per-window slack (the CUSUM `k`): excess below this permille of
    /// the baseline is treated as noise and never accumulates.
    pub cusum_slack_permille: u64,
    /// Floor applied to the baseline before computing relative excess, so
    /// a near-zero quiet baseline does not make the first real activity
    /// an infinite-score anomaly.
    pub min_baseline: u64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            warmup_windows: 4,
            ewma_shift: 3,
            cusum_threshold_permille: 4_000,
            cusum_slack_permille: 500,
            // Rate metrics saturate near 1e6/fault-cost (~41 per Mcycle
            // with the simulator's 24k-cycle faults) because the events
            // being counted inflate the elapsed-cycle denominator; the
            // floor must sit well below that ceiling or a saturated storm
            // reads as small relative excess.
            min_baseline: 8,
        }
    }
}

/// One window's reduced aggregates: the value of every tracked metric
/// plus (optionally) the thread that contributed most to each. Produced
/// by [`Analyzer::observe`]; proptests construct these directly and feed
/// [`Analyzer::ingest`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Virtual-clock timestamp at the window's drain.
    pub now: u64,
    /// Metric values, indexed by [`MetricKind`] discriminant.
    pub values: [u64; MetricKind::COUNT],
    /// Per-metric suspected thread (dense detector index), when the
    /// window's events attribute the metric's mass to one thread.
    pub suspects: [Option<u32>; MetricKind::COUNT],
}

/// A typed anomaly signal: evidence, not a verdict. Plain `Copy` integer
/// data so it can live inside the `Copy + Eq` detector snapshot and
/// cross the firehose wire as JSON.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalySignal {
    /// Which metric fired.
    pub metric: MetricKind,
    /// 1-based index of the window that fired (post-warmup windows count
    /// from `warmup_windows + 1`).
    pub window: u64,
    /// Virtual-clock timestamp of that window's drain.
    pub now: u64,
    /// The window's observed metric value.
    pub value: u64,
    /// The learned baseline the value was judged against.
    pub baseline: u64,
    /// Accumulated CUSUM score at fire time (permille-of-baseline).
    pub score: u64,
    /// Thread whose events dominated the metric this window, if any.
    pub suspected_thread: Option<u32>,
    /// Session the suspected thread belongs to — filled in by the
    /// firehose server (which owns the thread→session map); `None` in
    /// single-session embedding.
    pub suspected_session: Option<u64>,
}

/// Per-metric detector state exposed in snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricStats {
    /// Current learned baseline.
    pub baseline: u64,
    /// Most recent window's value.
    pub last_value: u64,
    /// Current CUSUM accumulation (permille-of-baseline).
    pub cusum_permille: u64,
    /// Signals fired on this metric so far.
    pub signals: u64,
}

/// Analyzer summary carried in `KardSnapshot::anomaly` and `/statsz`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyStats {
    /// Windows ingested (including warmup).
    pub windows: u64,
    /// Total signals fired across all metrics.
    pub signals: u64,
    /// Per-metric state, indexed by [`MetricKind`] discriminant.
    pub metrics: [MetricStats; MetricKind::COUNT],
    /// The most recent signal, if any has fired.
    pub last_signal: Option<AnomalySignal>,
}

/// One metric's full detector state (internal superset of [`MetricStats`]).
#[derive(Clone, Copy, Debug, Default)]
struct MetricState {
    baseline: u64,
    cusum: u64,
    last_value: u64,
    signals: u64,
}

/// Drain-side reduction state: previous histogram bucket snapshots (so
/// each window sees only its own delta) and the previous drain's clock.
#[derive(Debug)]
struct AnalyzerState {
    metrics: [MetricState; MetricKind::COUNT],
    windows: u64,
    last_now: u64,
    last_signal: Option<AnomalySignal>,
    fault_delay_buckets: [u64; BUCKETS],
    fault_delay_count: u64,
    section_hold_buckets: [u64; BUCKETS],
}

impl Default for AnalyzerState {
    fn default() -> Self {
        AnalyzerState {
            metrics: Default::default(),
            windows: 0,
            last_now: 0,
            last_signal: None,
            fault_delay_buckets: [0; BUCKETS],
            fault_delay_count: 0,
            section_hold_buckets: [0; BUCKETS],
        }
    }
}

/// The streaming anomaly detector. Owns one CUSUM + EWMA pair per
/// [`MetricKind`]; state sits behind a plain (untracked) mutex taken
/// only at drain time — never on the recording path.
#[derive(Debug)]
pub struct Analyzer {
    config: AnalyzerConfig,
    state: Mutex<AnalyzerState>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new(AnalyzerConfig::default())
    }
}

impl Analyzer {
    /// A fresh analyzer with the given sensitivity knobs.
    #[must_use]
    pub fn new(config: AnalyzerConfig) -> Analyzer {
        Analyzer {
            config,
            state: Mutex::new(AnalyzerState::default()),
        }
    }

    /// The knobs this analyzer was built with.
    #[must_use]
    pub fn config(&self) -> AnalyzerConfig {
        self.config
    }

    /// Reduce one drained batch (plus histogram deltas) to a
    /// [`WindowSample`] and run the detectors. Returns the signals that
    /// fired this window (usually empty).
    pub fn observe(&self, batch: &Drained, hists: &Histograms, now: u64) -> Vec<AnomalySignal> {
        let mut state = self.state.lock();
        let elapsed = now.saturating_sub(state.last_now).max(1);

        // Histogram deltas: per-window distributions from cumulative
        // bucket snapshots.
        let fault_delay = hists.fault_delay.bucket_counts();
        let section_hold = hists.section_hold.bucket_counts();
        let fault_delay_delta = bucket_delta(&fault_delay, &state.fault_delay_buckets);
        let section_hold_delta = bucket_delta(&section_hold, &state.section_hold_buckets);
        let fault_count_now = hists.fault_delay.count();
        let faults = fault_count_now.saturating_sub(state.fault_delay_count);
        state.fault_delay_buckets = fault_delay;
        state.section_hold_buckets = section_hold;
        state.fault_delay_count = fault_count_now;

        // Event-derived rates and per-thread attribution. Event counts
        // can undercount under ring overflow — acceptable for a signal.
        let mut key_pressure_events = 0u64;
        let mut remote_free_events = 0u64;
        let mut fault_by_thread = ThreadTally::default();
        let mut key_by_thread = ThreadTally::default();
        let mut free_by_thread = ThreadTally::default();
        let mut slowest_section: Option<(u64, u32)> = None;
        let mut slowest_fault: Option<(u64, u32)> = None;
        for e in &batch.events {
            match e.kind {
                EventKind::FaultEnter => fault_by_thread.add(e.thread),
                EventKind::FaultResolve if slowest_fault.is_none_or(|(lat, _)| e.a > lat) => {
                    slowest_fault = Some((e.a, e.thread));
                }
                EventKind::VKeyEvict | EventKind::VKeyDemoteBatch => {
                    key_pressure_events += 1;
                    key_by_thread.add(e.thread);
                }
                EventKind::RemoteFreePush => {
                    remote_free_events += 1;
                    free_by_thread.add(e.thread);
                }
                EventKind::SectionExit if slowest_section.is_none_or(|(hold, _)| e.b > hold) => {
                    slowest_section = Some((e.b, e.thread));
                }
                _ => {}
            }
        }

        let rate = |count: u64| count.saturating_mul(RATE_UNIT_CYCLES) / elapsed;
        let mut sample = WindowSample {
            now,
            values: [0; MetricKind::COUNT],
            suspects: [None; MetricKind::COUNT],
        };
        sample.values[MetricKind::FaultRate as usize] = rate(faults);
        sample.suspects[MetricKind::FaultRate as usize] = fault_by_thread.leader();
        sample.values[MetricKind::FaultDelayP95 as usize] =
            quantile_from_buckets(&fault_delay_delta, 0.95);
        sample.suspects[MetricKind::FaultDelayP95 as usize] = slowest_fault.map(|(_, t)| t);
        sample.values[MetricKind::KeyPressure as usize] = rate(key_pressure_events);
        sample.suspects[MetricKind::KeyPressure as usize] = key_by_thread.leader();
        sample.values[MetricKind::SectionHoldP95 as usize] =
            quantile_from_buckets(&section_hold_delta, 0.95);
        sample.suspects[MetricKind::SectionHoldP95 as usize] = slowest_section.map(|(_, t)| t);
        sample.values[MetricKind::RemoteFreeRate as usize] = rate(remote_free_events);
        sample.suspects[MetricKind::RemoteFreeRate as usize] = free_by_thread.leader();

        self.ingest_locked(&mut state, sample)
    }

    /// Feed one pre-reduced window straight into the detectors — the
    /// low-level API the proptests drive with synthetic streams.
    pub fn ingest(&self, sample: WindowSample) -> Vec<AnomalySignal> {
        let mut state = self.state.lock();
        self.ingest_locked(&mut state, sample)
    }

    fn ingest_locked(
        &self,
        state: &mut AnalyzerState,
        sample: WindowSample,
    ) -> Vec<AnomalySignal> {
        state.windows += 1;
        state.last_now = sample.now;
        let window = state.windows;
        let cfg = &self.config;
        let mut fired = Vec::new();
        for kind in MetricKind::ALL {
            let i = kind as usize;
            let x = sample.values[i];
            let m = &mut state.metrics[i];
            m.last_value = x;
            if window <= u64::from(cfg.warmup_windows) {
                // Learning only: adopt each warmup window outright, so the
                // baseline entering monitoring is the *last* warmup window —
                // startup transients (allocation bursts, first-touch
                // identification faults) age out with warmup instead of
                // echoing through the EWMA for the rest of the run.
                m.baseline = x;
                m.cusum = 0;
                continue;
            }
            let b = m.baseline.max(cfg.min_baseline);
            let excess_permille = if x > b {
                (x - b).saturating_mul(1000) / b
            } else {
                0
            };
            // One-sided CUSUM: S ← max(0, S + (excess − k)).
            let s = (m.cusum + excess_permille).saturating_sub(cfg.cusum_slack_permille);
            if s >= cfg.cusum_threshold_permille {
                // Fire, then adopt the new level so a step change raises
                // exactly one signal instead of alarming forever.
                m.signals += 1;
                m.baseline = x;
                m.cusum = 0;
                let signal = AnomalySignal {
                    metric: kind,
                    window,
                    now: sample.now,
                    value: x,
                    baseline: b,
                    score: s,
                    suspected_thread: sample.suspects[i],
                    suspected_session: None,
                };
                state.last_signal = Some(signal);
                fired.push(signal);
            } else {
                m.cusum = s;
                if s == 0 {
                    // In control: let the baseline track slow drift. The
                    // baseline is frozen mid-excursion so a creep keeps
                    // accumulating against the pre-creep level.
                    m.baseline = ewma(m.baseline, x, cfg.ewma_shift);
                }
            }
        }
        fired
    }

    /// Snapshot of every detector's state for `KardSnapshot::anomaly`
    /// and `/statsz`.
    #[must_use]
    pub fn stats(&self) -> AnomalyStats {
        let state = self.state.lock();
        let mut out = AnomalyStats {
            windows: state.windows,
            signals: state.metrics.iter().map(|m| m.signals).sum(),
            metrics: [MetricStats::default(); MetricKind::COUNT],
            last_signal: state.last_signal,
        };
        for (i, m) in state.metrics.iter().enumerate() {
            out.metrics[i] = MetricStats {
                baseline: m.baseline,
                last_value: m.last_value,
                cusum_permille: m.cusum,
                signals: m.signals,
            };
        }
        out
    }
}

/// Per-window delta of two cumulative bucket snapshots.
fn bucket_delta(now: &[u64; BUCKETS], prev: &[u64; BUCKETS]) -> [u64; BUCKETS] {
    std::array::from_fn(|i| now[i].saturating_sub(prev[i]))
}

/// Integer EWMA: move `old` toward `x` by `1/2^shift` of the gap.
fn ewma(old: u64, x: u64, shift: u32) -> u64 {
    if x >= old {
        old + ((x - old) >> shift)
    } else {
        old - ((old - x) >> shift)
    }
}

/// Small fixed tally of events per thread, tracking the leader without
/// allocating. Capacity bounds the distinct threads credited per window;
/// overflow threads simply go unattributed (signals, not truth).
#[derive(Debug)]
struct ThreadTally {
    threads: [u32; ThreadTally::CAP],
    counts: [u64; ThreadTally::CAP],
    len: usize,
}

impl Default for ThreadTally {
    fn default() -> Self {
        ThreadTally {
            threads: [0; ThreadTally::CAP],
            counts: [0; ThreadTally::CAP],
            len: 0,
        }
    }
}

impl ThreadTally {
    const CAP: usize = 64;

    fn add(&mut self, thread: u32) {
        for i in 0..self.len {
            if self.threads[i] == thread {
                self.counts[i] += 1;
                return;
            }
        }
        if self.len < ThreadTally::CAP {
            self.threads[self.len] = thread;
            self.counts[self.len] = 1;
            self.len += 1;
        }
    }

    fn leader(&self) -> Option<u32> {
        (0..self.len)
            .max_by_key(|&i| self.counts[i])
            .map(|i| self.threads[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(values: [u64; MetricKind::COUNT], now: u64) -> WindowSample {
        WindowSample {
            now,
            values,
            suspects: [None; MetricKind::COUNT],
        }
    }

    fn flat(v: u64, now: u64) -> WindowSample {
        sample([v; MetricKind::COUNT], now)
    }

    #[test]
    fn quiet_stream_raises_no_signals() {
        let a = Analyzer::default();
        for w in 0..100u64 {
            let fired = a.ingest(flat(1000, (w + 1) * 1_000_000));
            assert!(fired.is_empty(), "window {w} fired: {fired:?}");
        }
        let stats = a.stats();
        assert_eq!(stats.signals, 0);
        assert_eq!(stats.windows, 100);
        for m in stats.metrics {
            assert_eq!(m.baseline, 1000);
            assert_eq!(m.cusum_permille, 0);
        }
    }

    #[test]
    fn step_change_fires_exactly_once_per_metric_then_adapts() {
        let a = Analyzer::default();
        for w in 0..10u64 {
            assert!(a.ingest(flat(1000, (w + 1) * 1_000_000)).is_empty());
        }
        let mut total = 0usize;
        for w in 10..30u64 {
            total += a.ingest(flat(10_000, (w + 1) * 1_000_000)).len();
        }
        assert_eq!(
            total,
            MetricKind::COUNT,
            "a 10× step fires exactly one signal per metric"
        );
        let stats = a.stats();
        for m in stats.metrics {
            assert_eq!(m.signals, 1);
            assert_eq!(m.baseline, 10_000, "the new level was adopted");
        }
        let last = stats.last_signal.expect("a signal was recorded");
        assert_eq!(last.value, 10_000);
        assert_eq!(last.baseline, 1000);
        assert!(last.score >= AnalyzerConfig::default().cusum_threshold_permille);
    }

    #[test]
    fn warmup_suppresses_signals() {
        let a = Analyzer::new(AnalyzerConfig {
            warmup_windows: 3,
            ..AnalyzerConfig::default()
        });
        // Wild swings entirely inside warmup: nothing may fire.
        for (w, v) in [5u64, 50_000, 3, 80_000].into_iter().enumerate() {
            let fired = a.ingest(flat(v, (w as u64 + 1) * 1_000_000));
            if w < 3 {
                assert!(fired.is_empty(), "warmup window {w} fired");
            }
        }
    }

    #[test]
    fn slow_creep_accumulates_and_fires() {
        // Each window only 80% above baseline (excess 800‰, slack 500‰ ⇒
        // 300‰ accrued per window): no single window is alarming, but the
        // frozen-baseline CUSUM accumulates to the 4000‰ threshold.
        let a = Analyzer::default();
        for w in 0..10u64 {
            assert!(a.ingest(flat(1000, (w + 1) * 1_000_000)).is_empty());
        }
        let mut fired_at = None;
        for w in 10..40u64 {
            let fired = a.ingest(flat(1800, (w + 1) * 1_000_000));
            if !fired.is_empty() {
                fired_at = Some(w);
                break;
            }
        }
        let w = fired_at.expect("creep eventually fires");
        assert!(w >= 10 + 5, "not instantly: accrued over windows (fired at {w})");
    }

    #[test]
    fn observe_reduces_events_and_histograms() {
        let hists = Histograms::default();
        let a = Analyzer::default();
        let mut batch = Drained::default();
        for n in 0..10 {
            batch.events.push(crate::Event {
                tsc: n,
                thread: 7,
                kind: EventKind::RemoteFreePush,
                a: n,
                b: 0,
            });
        }
        hists.fault_delay.record(500);
        hists.section_hold.record(2_000);
        let fired = a.observe(&batch, &hists, 2 * RATE_UNIT_CYCLES);
        assert!(fired.is_empty(), "warmup window cannot fire");
        let stats = a.stats();
        // 10 remote frees over 2 Mcycles = 5 per Mcycle.
        assert_eq!(stats.metrics[MetricKind::RemoteFreeRate as usize].last_value, 5);
        assert_eq!(stats.metrics[MetricKind::FaultRate as usize].last_value, 0);
        assert!(stats.metrics[MetricKind::FaultDelayP95 as usize].last_value >= 500);
        assert!(stats.metrics[MetricKind::SectionHoldP95 as usize].last_value >= 2_000);
    }

    #[test]
    fn observe_attributes_suspect_thread() {
        let hists = Histograms::default();
        let a = Analyzer::new(AnalyzerConfig {
            warmup_windows: 1,
            cusum_threshold_permille: 100,
            cusum_slack_permille: 0,
            ..AnalyzerConfig::default()
        });
        // Quiet first window to seed the baselines.
        a.observe(&Drained::default(), &hists, RATE_UNIT_CYCLES);
        let mut batch = Drained::default();
        for n in 0..100 {
            batch.events.push(crate::Event {
                tsc: n,
                thread: if n % 10 == 0 { 1 } else { 3 },
                kind: EventKind::VKeyEvict,
                a: n,
                b: 1,
            });
        }
        let fired = a.observe(&batch, &hists, 2 * RATE_UNIT_CYCLES);
        let key = fired
            .iter()
            .find(|s| s.metric == MetricKind::KeyPressure)
            .expect("eviction storm fires key pressure");
        assert_eq!(key.suspected_thread, Some(3), "the dominant thread is suspected");
        assert_eq!(key.suspected_session, None);
    }

    #[test]
    fn metric_kind_round_trips() {
        for kind in MetricKind::ALL {
            assert_eq!(MetricKind::from_raw(kind as u64), Some(kind));
        }
        assert_eq!(MetricKind::from_raw(MetricKind::COUNT as u64), None);
    }
}
