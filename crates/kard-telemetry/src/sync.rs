//! Acquisition-counting lock wrappers shared by the detector and the
//! allocator.
//!
//! Kard's headline property is that the hot paths cost nothing shared: an
//! access that does not fault takes no detector lock (§4, §7.2), and an
//! owning-thread allocation or free is served entirely from the thread's
//! magazine. To make those claims *testable* rather than aspirational,
//! every shared lock inside the detector and the allocator is wrapped so
//! that acquisitions increment a shared counter.
//! `Kard::detector_lock_acquisitions` and
//! `KardAlloc::alloc_lock_acquisitions` expose the totals, and
//! `tests/no_lock_overhead.rs` asserts that the counters do not move
//! across a batch of fault-free accesses (detector) or a steady-state
//! churn of owning-thread alloc/free pairs (allocator).
//!
//! The wrappers are thin: one relaxed atomic increment per acquisition,
//! delegating everything else to `parking_lot`. They live here — in the
//! leaf telemetry crate — so that both `kard-core` and `kard-alloc` can
//! use them without a dependency cycle.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A mutex that counts every acquisition into a shared counter.
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    counter: Arc<AtomicU64>,
}

impl<T> TrackedMutex<T> {
    /// A new mutex whose acquisitions increment `counter`.
    pub fn new(value: T, counter: Arc<AtomicU64>) -> TrackedMutex<T> {
        TrackedMutex {
            inner: Mutex::new(value),
            counter,
        }
    }

    /// Acquire the lock, recording the acquisition.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.counter.fetch_add(1, Ordering::Relaxed);
        self.inner.lock()
    }

    /// Acquire the lock only if it is free right now. Counts the
    /// acquisition on success; a failed attempt costs nothing and is not
    /// recorded (the counters measure lock *traffic*, and a refused try
    /// touches no shared state). The fault-shard claiming protocol relies
    /// on this never blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        self.counter.fetch_add(1, Ordering::Relaxed);
        Some(guard)
    }
}

/// A reader-writer lock that counts every acquisition (read or write) into
/// a shared counter.
pub struct TrackedRwLock<T> {
    inner: RwLock<T>,
    counter: Arc<AtomicU64>,
}

impl<T> TrackedRwLock<T> {
    /// A new rwlock whose acquisitions increment `counter`.
    pub fn new(value: T, counter: Arc<AtomicU64>) -> TrackedRwLock<T> {
        TrackedRwLock {
            inner: RwLock::new(value),
            counter,
        }
    }

    /// Acquire a shared read guard, recording the acquisition.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.counter.fetch_add(1, Ordering::Relaxed);
        self.inner.read()
    }

    /// Acquire an exclusive write guard, recording the acquisition.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.counter.fetch_add(1, Ordering::Relaxed);
        self.inner.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_counts_acquisitions() {
        let counter = Arc::new(AtomicU64::new(0));
        let m = TrackedMutex::new(0u32, Arc::clone(&counter));
        *m.lock() += 1;
        *m.lock() += 1;
        assert_eq!(counter.load(Ordering::Relaxed), 2);
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_counts_reads_and_writes() {
        let counter = Arc::new(AtomicU64::new(0));
        let l = TrackedRwLock::new(5u32, Arc::clone(&counter));
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn locks_share_one_counter() {
        let counter = Arc::new(AtomicU64::new(0));
        let a = TrackedMutex::new((), Arc::clone(&counter));
        let b = TrackedRwLock::new((), Arc::clone(&counter));
        drop(a.lock());
        drop(b.read());
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }
}
