//! # kard-telemetry — lock-free observability for the Kard detector
//!
//! The detector's fault path is its product: races are found *inside*
//! page-fault handling, so understanding Kard means understanding what
//! its fault path did and how long it took. This crate gives the
//! detector a recording fabric whose cost model matches the thing it
//! observes:
//!
//! * **Recording** ([`Telemetry::record`], [`LatencyHistogram::record`])
//!   is lock-free, allocation-free, and uses only relaxed atomics. A
//!   disabled telemetry layer costs one relaxed load per call site.
//! * **Collection** ([`Telemetry::drain`]) may take *telemetry* locks
//!   (its own cursor mutex) but never detector locks — it only reads
//!   the per-thread rings and the atomic histograms.
//! * **Export** ([`export::json_lines`], [`export::chrome_trace`]) is
//!   plain post-processing over drained batches.
//!
//! The crate deliberately knows nothing about `kard-core`: events are
//! raw `(tsc, thread, kind, a, b)` tuples (see [`event::EventKind`] for
//! the payload vocabulary) so the dependency points from the detector to
//! its telemetry, never back.

#![deny(missing_docs)]

pub mod analyze;
pub mod consumer;
pub mod event;
pub mod export;
pub mod hist;
pub mod ring;
pub mod sync;

pub use analyze::{Analyzer, AnalyzerConfig, AnomalySignal, AnomalyStats, MetricKind, WindowSample};
pub use consumer::{ChromeTraceSink, DrainContext, JsonLinesSink, TelemetryConsumer};
pub use event::{Event, EventKind};
pub use hist::{merged_summary, HistogramSummary, LatencyHistogram};
pub use ring::EventRing;
pub use sync::{TrackedMutex, TrackedRwLock};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Upper bound on tracked threads, matching the detector's dense
/// thread-index space. The rings table is a fixed array of `OnceLock`s
/// so thread registration never moves existing rings (recorders hold
/// `Arc`s into it).
pub const MAX_THREADS: usize = 512;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 15;

/// The log-bucketed distributions recorded alongside the event stream.
#[derive(Debug, Default)]
pub struct Histograms {
    /// Fault-handling delay: virtual cycles from fault raise to resolve.
    /// Its p99 feeds the §5.5 timestamp-filter threshold.
    pub fault_delay: LatencyHistogram,
    /// Per-call `pkey_mprotect` charge (cycles; one grouped call records
    /// its whole batched charge).
    pub mprotect: LatencyHistogram,
    /// Critical-section hold time (cycles between lock enter and exit).
    pub section_hold: LatencyHistogram,
    /// Key pressure: the number of live shared-object groups (virtual
    /// keys) observed at each virtualized key assignment. A distribution
    /// wholly below 14 means the 13 hardware pool keys were never
    /// oversubscribed; the tail above it measures how hard the eviction
    /// cache is working.
    pub key_pressure: LatencyHistogram,
    /// Magazine occupancy: prepared slots remaining in the owning
    /// thread's magazine class at each fast-path allocation. A
    /// distribution hugging zero means refills are too small (every
    /// allocation rides the refill slow path); mass in the upper buckets
    /// means the batch size has adapted to the allocation rate.
    pub magazine_occupancy: LatencyHistogram,
    /// Fault concurrency: how many fault-path operations were in flight
    /// (across all fault shards, including this one) when each fault
    /// handler entered. Mass above 1 is parallelism the per-group fault
    /// shards provide and a single global fault lock would have
    /// serialized away.
    pub fault_concurrency: LatencyHistogram,
    /// Observed detection overhead in permille of elapsed virtual cycles,
    /// recorded once per overhead-budget controller tick (drain side only;
    /// nothing on the recording path writes here). The distribution shows
    /// how tightly the controller tracked its budget over the run.
    pub overhead: LatencyHistogram,
}

/// A drained batch of events plus how many were lost to ring overflow.
#[derive(Debug, Default)]
pub struct Drained {
    /// Recovered events, sorted by timestamp (global virtual clock).
    pub events: Vec<Event>,
    /// Events overwritten (or torn) before they could be drained.
    pub dropped: u64,
}

/// Shared telemetry hub: per-thread event rings, latency histograms, and
/// the collector cursor state.
///
/// One `Telemetry` is shared (via `Arc`) by the allocator, the detector,
/// and the session. All recording methods honour the enabled flag
/// internally, but hot call sites should gate on [`Telemetry::enabled`]
/// first so a disabled layer costs exactly one relaxed load.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    capacity: usize,
    /// Ring per registered thread, materialized lazily: registration
    /// records the thread; the ring itself is allocated on the first
    /// enable (or registration-while-enabled) so a telemetry-off run
    /// never pays the ring memory.
    rings: Box<[OnceLock<Arc<EventRing>>]>,
    /// Dense upper bound on registered thread indices (exclusive).
    registered: AtomicUsize,
    /// Events dropped because the acting thread index exceeded
    /// [`MAX_THREADS`] (diagnostic; should stay zero).
    dropped_unregistered: AtomicU64,
    hists: Histograms,
    /// Collector-side drain cursors, one per thread. A telemetry lock —
    /// taken only by [`Telemetry::drain`], never on the recording path.
    cursors: Mutex<Vec<u64>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A disabled hub with the default ring capacity.
    #[must_use]
    pub fn new() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A disabled hub whose rings (once materialized) hold `capacity`
    /// events each.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(false),
            capacity,
            rings: (0..MAX_THREADS).map(|_| OnceLock::new()).collect(),
            registered: AtomicUsize::new(0),
            dropped_unregistered: AtomicU64::new(0),
            hists: Histograms::default(),
            cursors: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is on — a single relaxed load, the entire cost
    /// of a disabled telemetry layer at each call site.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. Enabling materializes rings for every
    /// already-registered thread (an allocation, which is why it happens
    /// here and not on the recording path).
    pub fn set_enabled(&self, on: bool) {
        if on {
            let hi = self.registered.load(Ordering::Acquire);
            for slot in &self.rings[..hi] {
                slot.get_or_init(|| Arc::new(EventRing::new(self.capacity)));
            }
        }
        self.enabled.store(on, Ordering::Release);
    }

    /// Note that `thread` exists. Idempotent; allocates that thread's
    /// ring immediately when telemetry is enabled, otherwise defers to
    /// [`Telemetry::set_enabled`]. Called from thread registration, not
    /// from the access path.
    pub fn ensure_thread(&self, thread: usize) {
        if thread >= MAX_THREADS {
            return;
        }
        self.registered.fetch_max(thread + 1, Ordering::AcqRel);
        if self.enabled() {
            self.rings[thread].get_or_init(|| Arc::new(EventRing::new(self.capacity)));
        }
    }

    /// Record one event on behalf of `thread`. Lock-free and
    /// allocation-free; no-op when disabled or the thread has no ring.
    #[inline]
    pub fn record(&self, thread: usize, kind: EventKind, tsc: u64, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        let Some(ring) = self.rings.get(thread).and_then(OnceLock::get) else {
            self.dropped_unregistered.fetch_add(1, Ordering::Relaxed);
            return;
        };
        ring.record(Event {
            tsc,
            thread: thread as u32,
            kind,
            a,
            b,
        });
    }

    /// The latency histograms (always recordable; histogram call sites
    /// gate on [`Telemetry::enabled`] themselves).
    #[must_use]
    pub fn histograms(&self) -> &Histograms {
        &self.hists
    }

    /// Total events ever recorded across all rings (including any since
    /// overwritten). Zero proves no ring was touched.
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        let hi = self.registered.load(Ordering::Acquire);
        self.rings[..hi]
            .iter()
            .filter_map(OnceLock::get)
            .map(|r| r.recorded())
            .sum::<u64>()
            + self.dropped_unregistered.load(Ordering::Relaxed)
    }

    /// Drain every ring past its cursor and merge the result into one
    /// timestamp-sorted batch. Takes only the telemetry cursor lock;
    /// exact at quiescence, best-effort while threads still record (see
    /// the [`ring`] module docs for the seqlock argument).
    pub fn drain(&self) -> Drained {
        let mut cursors = self.cursors.lock();
        let hi = self.registered.load(Ordering::Acquire);
        if cursors.len() < hi {
            cursors.resize(hi, 0);
        }
        let mut out = Drained::default();
        for (thread, cursor) in cursors.iter_mut().enumerate() {
            let Some(ring) = self.rings[thread].get() else {
                continue;
            };
            let (new_cursor, lost) = ring.drain_from(*cursor, &mut out.events);
            *cursor = new_cursor;
            out.dropped += lost;
        }
        out.dropped += self.dropped_unregistered.swap(0, Ordering::Relaxed);
        out.events.sort_by_key(|e| e.tsc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_touches_no_ring() {
        let t = Telemetry::new();
        t.ensure_thread(0);
        t.record(0, EventKind::SectionEnter, 1, 2, 3);
        assert_eq!(t.events_recorded(), 0);
        assert!(t.drain().events.is_empty());
    }

    #[test]
    fn enable_materializes_rings_for_registered_threads() {
        let t = Telemetry::with_capacity(8);
        t.ensure_thread(0);
        t.ensure_thread(3);
        t.set_enabled(true);
        for thread in [0usize, 3] {
            t.record(thread, EventKind::KeyGrant, 10 + thread as u64, 1, 0);
        }
        assert_eq!(t.events_recorded(), 2);
        let drained = t.drain();
        assert_eq!(drained.dropped, 0);
        assert_eq!(
            drained.events.iter().map(|e| e.thread).collect::<Vec<_>>(),
            vec![0, 3]
        );
    }

    #[test]
    fn registration_while_enabled_gets_a_ring_immediately() {
        let t = Telemetry::with_capacity(8);
        t.set_enabled(true);
        t.ensure_thread(1);
        t.record(1, EventKind::FaultEnter, 5, 0, 0);
        assert_eq!(t.events_recorded(), 1);
    }

    #[test]
    fn drain_merges_sorted_and_resumes() {
        let t = Telemetry::with_capacity(8);
        t.ensure_thread(0);
        t.ensure_thread(1);
        t.set_enabled(true);
        t.record(1, EventKind::SectionEnter, 30, 0, 1);
        t.record(0, EventKind::SectionEnter, 10, 0, 1);
        t.record(0, EventKind::SectionExit, 20, 0, 10);
        let first = t.drain();
        assert_eq!(
            first.events.iter().map(|e| e.tsc).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        t.record(1, EventKind::SectionExit, 40, 0, 10);
        let second = t.drain();
        assert_eq!(second.events.len(), 1, "cursors advanced past the first batch");
        assert_eq!(second.events[0].tsc, 40);
    }

    #[test]
    fn overflow_is_reported_as_dropped() {
        let t = Telemetry::with_capacity(4);
        t.ensure_thread(0);
        t.set_enabled(true);
        for n in 0..10 {
            t.record(0, EventKind::KeyGrant, n, n, 0);
        }
        let drained = t.drain();
        assert_eq!(drained.events.len(), 4);
        assert_eq!(drained.dropped, 6);
    }

    #[test]
    fn out_of_range_thread_counts_as_dropped() {
        let t = Telemetry::new();
        t.set_enabled(true);
        t.record(MAX_THREADS + 1, EventKind::KeyGrant, 0, 0, 0);
        let drained = t.drain();
        assert!(drained.events.is_empty());
        assert_eq!(drained.dropped, 1);
    }
}
