//! The structured event vocabulary of the detector fault path.
//!
//! Events are fixed-size plain-data records: a virtual-clock timestamp, the
//! acting thread, a kind tag, and two kind-specific `u64` payloads. The
//! fixed shape is what lets the recording path write an event with a
//! handful of relaxed atomic stores and no heap allocation; the meaning of
//! `a` and `b` per kind is documented on [`EventKind`].

/// Payload value of [`EventKind::KeyGrant`] `b` for a proactive
/// acquisition performed at section entry (§5.4).
pub const GRANT_PROACTIVE: u64 = 0;
/// Payload value of [`EventKind::KeyGrant`] `b` for a reactive acquisition
/// performed by the fault handler (§5.4).
pub const GRANT_REACTIVE: u64 = 1;

/// Protection-domain code carried by [`EventKind::DomainMigration`]
/// payloads (the pool key of a Read-write domain travels separately in the
/// high bits, see [`pack_domains`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum DomainCode {
    /// The Not-accessed domain (`k_na`).
    NotAccessed = 0,
    /// The Read-only domain (`k_ro`).
    ReadOnly = 1,
    /// The Read-write domain (a pool key).
    ReadWrite = 2,
    /// Protection suspended while an interleaving winds down (§5.5).
    Suspended = 3,
}

impl DomainCode {
    /// Decode a raw code, if valid.
    #[must_use]
    pub fn from_raw(raw: u64) -> Option<DomainCode> {
        match raw {
            0 => Some(DomainCode::NotAccessed),
            1 => Some(DomainCode::ReadOnly),
            2 => Some(DomainCode::ReadWrite),
            3 => Some(DomainCode::Suspended),
            _ => None,
        }
    }
}

/// Pack a domain migration's source and destination into one `u64` payload:
/// `from` in bits 0–7, `to` in bits 8–15.
#[must_use]
pub fn pack_domains(from: DomainCode, to: DomainCode) -> u64 {
    from as u64 | (to as u64) << 8
}

/// Unpack a [`pack_domains`] payload back into `(from, to)`.
#[must_use]
pub fn unpack_domains(b: u64) -> Option<(DomainCode, DomainCode)> {
    Some((DomainCode::from_raw(b & 0xff)?, DomainCode::from_raw((b >> 8) & 0xff)?))
}

/// What happened. Payload meaning (`a`, `b`) per kind:
///
/// | kind | `a` | `b` |
/// |---|---|---|
/// | `SectionEnter` | section site | sections concurrently active (incl. this) |
/// | `SectionExit` | section site | hold time in cycles |
/// | `ObjectAlloc` / `ObjectGlobal` | object id | size in bytes |
/// | `ObjectFree` | object id | — |
/// | `DomainMigration` | object id | [`pack_domains`]`(from, to)` |
/// | `KeyGrant` | key | [`GRANT_PROACTIVE`] or [`GRANT_REACTIVE`] |
/// | `KeyRecycle` | key | objects evicted |
/// | `KeyShare` | key | — |
/// | `FaultEnter` | faulting address | faulting key |
/// | `FaultResolve` | handling latency in cycles | 0 retry / 1 emulated |
/// | `FaultIdentify` | object id | 0 read / 1 write |
/// | `FaultMigrate` | object id | — |
/// | `FaultRaceCheck` | object id | 0 unlocked-RO / 1 pool conflict / 2 recent release / 3 revival logical-holder |
/// | `FaultInterleave` | object id | — |
/// | `TimestampFiltered` | key | — |
/// | `InterleaveArm` | object id | interleaved key |
/// | `InterleaveFinish` | object id | restored original key |
/// | `InterleaveExpire` | object id | — |
/// | `RaceReport` | object id | faulting thread |
/// | `RacePruneOffset` | object id | — |
/// | `RacePruneRedundant` | object id | — |
/// | `VKeyHit` | virtual key | hardware key |
/// | `VKeyMiss` | virtual key | hardware key bound (fill or revival) |
/// | `VKeyEvict` | evicted virtual key | objects demoted |
/// | `AllocFastHit` | object id | rounded size in bytes |
/// | `AllocSlabRefill` | rounded size in bytes | slots provisioned |
/// | `RemoteFreePush` | object id | owning thread |
/// | `RemoteFreeDrain` | slots drained | pages retired |
/// | `FaultShardContended` | fault-shard index | faults in flight (incl. this) |
/// | `VKeyDemoteBatch` | evicted virtual key | live objects demoted in the grouped `pkey_mprotect` |
/// | `BudgetSkip` | object id left unprotected | side-metadata heat at decision time |
/// | `BudgetAdjust` | new sample permille | new hotness threshold |
/// | `BudgetBackoff` | 1 entering / 0 leaving backoff | observed overhead in permille |
/// | `AnomalySignal` | [`crate::analyze::MetricKind`] discriminant | CUSUM score in permille-of-baseline |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // The table above is the per-variant documentation.
pub enum EventKind {
    SectionEnter = 0,
    SectionExit = 1,
    ObjectAlloc = 2,
    ObjectGlobal = 3,
    ObjectFree = 4,
    DomainMigration = 5,
    KeyGrant = 6,
    KeyRecycle = 7,
    KeyShare = 8,
    FaultEnter = 9,
    FaultResolve = 10,
    FaultIdentify = 11,
    FaultMigrate = 12,
    FaultRaceCheck = 13,
    FaultInterleave = 14,
    TimestampFiltered = 15,
    InterleaveArm = 16,
    InterleaveFinish = 17,
    InterleaveExpire = 18,
    RaceReport = 19,
    RacePruneOffset = 20,
    RacePruneRedundant = 21,
    VKeyHit = 22,
    VKeyMiss = 23,
    VKeyEvict = 24,
    AllocFastHit = 25,
    AllocSlabRefill = 26,
    RemoteFreePush = 27,
    RemoteFreeDrain = 28,
    FaultShardContended = 29,
    VKeyDemoteBatch = 30,
    BudgetSkip = 31,
    BudgetAdjust = 32,
    BudgetBackoff = 33,
    AnomalySignal = 34,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 35] = [
        EventKind::SectionEnter,
        EventKind::SectionExit,
        EventKind::ObjectAlloc,
        EventKind::ObjectGlobal,
        EventKind::ObjectFree,
        EventKind::DomainMigration,
        EventKind::KeyGrant,
        EventKind::KeyRecycle,
        EventKind::KeyShare,
        EventKind::FaultEnter,
        EventKind::FaultResolve,
        EventKind::FaultIdentify,
        EventKind::FaultMigrate,
        EventKind::FaultRaceCheck,
        EventKind::FaultInterleave,
        EventKind::TimestampFiltered,
        EventKind::InterleaveArm,
        EventKind::InterleaveFinish,
        EventKind::InterleaveExpire,
        EventKind::RaceReport,
        EventKind::RacePruneOffset,
        EventKind::RacePruneRedundant,
        EventKind::VKeyHit,
        EventKind::VKeyMiss,
        EventKind::VKeyEvict,
        EventKind::AllocFastHit,
        EventKind::AllocSlabRefill,
        EventKind::RemoteFreePush,
        EventKind::RemoteFreeDrain,
        EventKind::FaultShardContended,
        EventKind::VKeyDemoteBatch,
        EventKind::BudgetSkip,
        EventKind::BudgetAdjust,
        EventKind::BudgetBackoff,
        EventKind::AnomalySignal,
    ];

    /// Decode a raw discriminant, if valid.
    #[must_use]
    pub fn from_raw(raw: u64) -> Option<EventKind> {
        EventKind::ALL.get(raw as usize).copied()
    }

    /// Stable human-readable name (used by both exporters).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SectionEnter => "section_enter",
            EventKind::SectionExit => "section_exit",
            EventKind::ObjectAlloc => "object_alloc",
            EventKind::ObjectGlobal => "object_global",
            EventKind::ObjectFree => "object_free",
            EventKind::DomainMigration => "domain_migration",
            EventKind::KeyGrant => "key_grant",
            EventKind::KeyRecycle => "key_recycle",
            EventKind::KeyShare => "key_share",
            EventKind::FaultEnter => "fault_enter",
            EventKind::FaultResolve => "fault_resolve",
            EventKind::FaultIdentify => "fault_identify",
            EventKind::FaultMigrate => "fault_migrate",
            EventKind::FaultRaceCheck => "fault_race_check",
            EventKind::FaultInterleave => "fault_interleave",
            EventKind::TimestampFiltered => "timestamp_filtered",
            EventKind::InterleaveArm => "interleave_arm",
            EventKind::InterleaveFinish => "interleave_finish",
            EventKind::InterleaveExpire => "interleave_expire",
            EventKind::RaceReport => "race_report",
            EventKind::RacePruneOffset => "race_prune_offset",
            EventKind::RacePruneRedundant => "race_prune_redundant",
            EventKind::VKeyHit => "vkey_hit",
            EventKind::VKeyMiss => "vkey_miss",
            EventKind::VKeyEvict => "vkey_evict",
            EventKind::AllocFastHit => "alloc_fast_hit",
            EventKind::AllocSlabRefill => "alloc_slab_refill",
            EventKind::RemoteFreePush => "remote_free_push",
            EventKind::RemoteFreeDrain => "remote_free_drain",
            EventKind::FaultShardContended => "fault_shard_contended",
            EventKind::VKeyDemoteBatch => "vkey_demote_batch",
            EventKind::BudgetSkip => "budget_skip",
            EventKind::BudgetAdjust => "budget_adjust",
            EventKind::BudgetBackoff => "budget_backoff",
            EventKind::AnomalySignal => "anomaly_signal",
        }
    }
}

/// One recorded telemetry event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual-clock timestamp at recording time (global clock, cycles).
    pub tsc: u64,
    /// Acting thread (dense detector thread index).
    pub thread: u32,
    /// What happened.
    pub kind: EventKind,
    /// First payload (see [`EventKind`]).
    pub a: u64,
    /// Second payload (see [`EventKind`]).
    pub b: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_raw() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_raw(kind as u64), Some(kind));
        }
        assert_eq!(EventKind::from_raw(EventKind::ALL.len() as u64), None);
    }

    #[test]
    fn domain_packing_round_trips() {
        let b = pack_domains(DomainCode::NotAccessed, DomainCode::ReadWrite);
        assert_eq!(
            unpack_domains(b),
            Some((DomainCode::NotAccessed, DomainCode::ReadWrite))
        );
        assert_eq!(unpack_domains(0xff), None);
    }
}
