//! Per-thread bounded event rings.
//!
//! One [`EventRing`] belongs to one logical detector thread; only that
//! thread records into it (the detector serializes everything it does on
//! behalf of a thread), while the collector may read concurrently. The
//! recording path is the part that must cost nothing:
//!
//! * **no locks** — a record is five relaxed atomic stores plus one
//!   relaxed head bump;
//! * **no allocation** — slots are preallocated at ring creation
//!   (thread-registration time, not recording time);
//! * **bounded** — the ring keeps the most recent `capacity` events and
//!   overwrites the oldest; the drain reports how many were lost.
//!
//! Each slot carries a sequence word so a concurrent drain can tell
//! whether the slot it just read was being overwritten mid-read: the
//! writer publishes `2·(index+1)` into the slot's `seq` after the payload
//! and an odd value before. Because the writer uses only relaxed stores
//! (that is the recording-path contract), a mid-flight drain is *best
//! effort* — a torn slot is detected by the seq check with high
//! probability, and skipped. At quiescence (no thread recording, the mode
//! every exporter runs in) the relaxed stores are all visible and the
//! drain is exact. DESIGN.md §5d spells out the full argument.

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicU64, Ordering};

/// One preallocated event slot (seq + packed payload words).
#[derive(Debug)]
struct Slot {
    /// `2·(index+1)` once the event at logical index `index` is complete;
    /// odd while a write is in flight.
    seq: AtomicU64,
    tsc: AtomicU64,
    /// Kind in bits 0–31, thread in bits 32–63.
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A bounded single-producer ring of [`Event`]s.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Events ever recorded into this ring (monotone).
    head: AtomicU64,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events. `capacity` is
    /// rounded up to a power of two (minimum 2).
    #[must_use]
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                tsc: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            mask: cap as u64 - 1,
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever recorded (including any that have been overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free and allocation-free; relaxed atomics
    /// only (the recording-path contract).
    pub fn record(&self, event: Event) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        slot.tsc.store(event.tsc, Ordering::Relaxed);
        slot.meta.store(
            event.kind as u64 | u64::from(event.thread) << 32,
            Ordering::Relaxed,
        );
        slot.a.store(event.a, Ordering::Relaxed);
        slot.b.store(event.b, Ordering::Relaxed);
        slot.seq.store(2 * (h + 1), Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Relaxed);
    }

    /// Read every event with logical index in `[cursor, head)` that is
    /// still resident, appending to `out`. Returns `(new_cursor, lost)`
    /// where `lost` counts events overwritten before they could be read
    /// (plus any slot torn by a concurrent write).
    pub fn drain_from(&self, cursor: u64, out: &mut Vec<Event>) -> (u64, u64) {
        let head = self.head.load(Ordering::Acquire);
        let oldest = head.saturating_sub(self.slots.len() as u64);
        let lo = cursor.max(oldest);
        let mut lost = lo - cursor;
        for i in lo..head {
            let slot = &self.slots[(i & self.mask) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            let tsc = slot.tsc.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let seq_after = slot.seq.load(Ordering::Acquire);
            let expected = 2 * (i + 1);
            let kind = EventKind::from_raw(meta & 0xffff_ffff);
            match kind {
                Some(kind) if seq_before == expected && seq_after == expected => {
                    out.push(Event {
                        tsc,
                        thread: (meta >> 32) as u32,
                        kind,
                        a,
                        b,
                    });
                }
                _ => lost += 1, // Torn by a concurrent overwrite; skip.
            }
        }
        (head, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event {
            tsc: n,
            thread: 7,
            kind: EventKind::SectionEnter,
            a: n * 10,
            b: n * 100,
        }
    }

    #[test]
    fn records_and_drains_in_order() {
        let ring = EventRing::new(8);
        for n in 0..5 {
            ring.record(ev(n));
        }
        let mut out = Vec::new();
        let (cursor, lost) = ring.drain_from(0, &mut out);
        assert_eq!(cursor, 5);
        assert_eq!(lost, 0);
        assert_eq!(out.len(), 5);
        assert_eq!(out[3], ev(3));
    }

    #[test]
    fn overflow_drops_oldest_and_counts_them() {
        let ring = EventRing::new(4);
        for n in 0..11 {
            ring.record(ev(n));
        }
        let mut out = Vec::new();
        let (cursor, lost) = ring.drain_from(0, &mut out);
        assert_eq!(cursor, 11);
        assert_eq!(lost, 7, "capacity 4 keeps only the last 4 of 11");
        assert_eq!(
            out.iter().map(|e| e.tsc).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
    }

    #[test]
    fn incremental_drain_resumes_at_cursor() {
        let ring = EventRing::new(8);
        ring.record(ev(0));
        ring.record(ev(1));
        let mut out = Vec::new();
        let (cursor, _) = ring.drain_from(0, &mut out);
        ring.record(ev(2));
        let (cursor, lost) = ring.drain_from(cursor, &mut out);
        assert_eq!((cursor, lost), (3, 0));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::new(5).capacity(), 8);
        assert_eq!(EventRing::new(0).capacity(), 2);
    }
}
