//! Trace exporters: JSON-Lines and Chrome `trace_event` format.
//!
//! Both exporters are pure functions over a drained event batch; they run
//! outside the detector entirely (the collector's side of the protocol)
//! and are free to allocate. The Chrome exporter emits the subset of the
//! [Trace Event Format] that `chrome://tracing` and Perfetto accept:
//! duration events (`ph: "B"`/`"E"`) for critical sections and fault
//! handling, thread-scoped instant events (`ph: "i"`, `s: "t"`) for
//! everything else.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! All strings in the output come from fixed vocabularies (event-kind
//! names, hex-formatted integers), so the emitted text is valid JSON by
//! construction; `tests` parse it back with `serde_json` to keep that
//! claim checked.

use crate::event::{Event, EventKind};
use std::fmt::Write as _;

/// Virtual-clock cycles per microsecond on the paper's 2.1 GHz evaluation
/// machine (§7.1) — mirrors `kard_sim::PAPER_CPU_HZ` without the
/// dependency. The Chrome format wants microsecond timestamps.
pub const CYCLES_PER_US: f64 = 2_100.0;

/// Serialize events as JSON-Lines: one self-describing object per line.
#[must_use]
pub fn json_lines(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        let _ = writeln!(
            out,
            "{{\"tsc\":{},\"thread\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.tsc,
            e.thread,
            e.kind.name(),
            e.a,
            e.b
        );
    }
    out
}

/// Which Chrome phase an event maps to.
enum Phase {
    Begin(String),
    End,
    Instant,
}

fn phase_of(e: &Event) -> (Phase, &'static str) {
    match e.kind {
        EventKind::SectionEnter => (Phase::Begin(format!("section {:#x}", e.a)), "section"),
        EventKind::SectionExit => (Phase::End, "section"),
        EventKind::FaultEnter => (Phase::Begin(format!("fault key {}", e.b)), "fault"),
        EventKind::FaultResolve => (Phase::End, "fault"),
        _ => (Phase::Instant, "detector"),
    }
}

/// Serialize events in Chrome `trace_event` JSON (the "JSON object
/// format": `{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto. Events must be in per-thread recording order for the
/// begin/end pairs to nest (the order a drain yields).
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(events.len());
    for e in events {
        let ts = e.tsc as f64 / CYCLES_PER_US;
        let (phase, cat) = phase_of(e);
        let entry = match phase {
            Phase::Begin(name) => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{}}}",
                e.thread
            ),
            Phase::End => format!(
                "{{\"ph\":\"E\",\"cat\":\"{cat}\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{}}}",
                e.thread
            ),
            Phase::Instant => format!(
                "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                e.kind.name(),
                e.thread,
                e.a,
                e.b
            ),
        };
        entries.push(entry);
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
        entries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event { tsc: 100, thread: 0, kind: EventKind::SectionEnter, a: 0x1a, b: 1 },
            Event { tsc: 150, thread: 0, kind: EventKind::KeyGrant, a: 3, b: 0 },
            Event { tsc: 220, thread: 1, kind: EventKind::FaultEnter, a: 0x4000, b: 5 },
            Event { tsc: 24_420, thread: 1, kind: EventKind::FaultResolve, a: 24_200, b: 0 },
            Event { tsc: 400, thread: 0, kind: EventKind::SectionExit, a: 0x1a, b: 300 },
        ]
    }

    #[test]
    fn json_lines_parse_individually() {
        let text = json_lines(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            let serde_json::Value::Object(obj) = v else {
                panic!("each line is an object")
            };
            let mut keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
            keys.sort_unstable();
            assert_eq!(keys, ["a", "b", "kind", "thread", "tsc"]);
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_paired_durations() {
        let text = chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid trace JSON");
        let serde_json::Value::Object(top) = v else {
            panic!("top level is an object")
        };
        let events = top
            .iter()
            .find(|(k, _)| k.as_str() == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents present");
        let serde_json::Value::Array(items) = events else {
            panic!("traceEvents is an array")
        };
        assert_eq!(items.len(), 5);
        let phases: Vec<String> = items
            .iter()
            .map(|item| {
                let serde_json::Value::Object(o) = item else { panic!() };
                o.iter()
                    .find(|(k, _)| k.as_str() == "ph")
                    .map(|(_, v)| format!("{v:?}"))
                    .expect("every entry has a phase")
            })
            .collect();
        assert_eq!(phases.iter().filter(|p| p.contains('B')).count(), 2);
        assert_eq!(phases.iter().filter(|p| p.contains('E')).count(), 2);
    }

    #[test]
    fn timestamps_convert_to_microseconds() {
        let text = chrome_trace(&sample()[..1]);
        // 100 cycles at 2.1 GHz ≈ 0.048 µs.
        assert!(text.contains("\"ts\":0.048"), "{text}");
    }
}
