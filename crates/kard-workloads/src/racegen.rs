//! Random racy-program generation for the §3.1 ILU-share study.
//!
//! The paper manually classified 100 fixed TSan bug reports and found that
//! 69% involved inconsistent lock usage (at least one side held a lock).
//! This module generates a synthetic corpus with the same category mix and
//! verifies the classification *mechanically*: every scenario is run under
//! both FastTrack (detects all races — the TSan stand-in) and Kard
//! (detects the ILU subset), so the ILU share of the corpus can be
//! *measured* instead of assumed.

use kard_core::LockId;
use kard_sim::CodeSite;
use kard_trace::{ObjectTag, ThreadProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Lock usage category of a generated two-thread conflict (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Both sides hold (different) locks.
    BothLockedDifferent,
    /// Only the first accessor holds a lock.
    FirstLockedOnly,
    /// Only the second accessor holds a lock.
    SecondLockedOnly,
    /// Neither side holds a lock (out of ILU scope).
    NoLocks,
}

impl Category {
    /// Whether the category is in ILU scope (Table 1).
    #[must_use]
    pub fn is_ilu(self) -> bool {
        !matches!(self, Category::NoLocks)
    }
}

/// A generated two-thread conflicting scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Category the generator drew.
    pub category: Category,
    /// The two thread programs (object tag 0 is the conflict target).
    pub programs: Vec<ThreadProgram>,
}

/// Corpus mix: fractions must sum to 1. The default reproduces the paper's
/// study: 69% of racy reports involve at least one lock.
#[derive(Clone, Copy, Debug)]
pub struct CorpusMix {
    /// Fraction of both-locked scenarios.
    pub both_locked: f64,
    /// Fraction with exactly one side locked.
    pub one_locked: f64,
    /// Fraction with no locks.
    pub no_locks: f64,
}

impl Default for CorpusMix {
    fn default() -> Self {
        // 30% + 39% = 69% ILU, 31% lock-free, matching §3.1.
        CorpusMix {
            both_locked: 0.30,
            one_locked: 0.39,
            no_locks: 0.31,
        }
    }
}

/// Generate a corpus of `n` conflicting scenarios with the given mix.
#[must_use]
pub fn generate_corpus(n: usize, mix: &CorpusMix, seed: u64) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let draw: f64 = rng.gen();
            let category = if draw < mix.both_locked {
                Category::BothLockedDifferent
            } else if draw < mix.both_locked + mix.one_locked {
                if rng.gen() {
                    Category::FirstLockedOnly
                } else {
                    Category::SecondLockedOnly
                }
            } else {
                Category::NoLocks
            };
            scenario(category, i as u64, rng.gen_range(0..4))
        })
        .collect()
}

/// Build one scenario of the given category for the round-robin schedule.
///
/// The *locked* side always accesses first, so Kard's progressive
/// identification has assigned a key (held by that side) by the time the
/// conflicting access arrives — the schedule shape in which ILU races
/// manifest. `Op::Compute` no-ops pad the conflicting thread so that the
/// round-robin interleaver lands its access inside the holder's critical
/// section. The conflicting access is a write when `variant % 2 == 0`,
/// otherwise a read (conflicting with the holder's writes either way).
#[must_use]
pub fn scenario(category: Category, id: u64, variant: u64) -> Scenario {
    const TARGET: ObjectTag = ObjectTag(0);
    let base_site = 0x1_0000 + id * 0x100;
    let second_writes = variant.is_multiple_of(2);

    let mut first = ThreadProgram::new();
    let mut second = ThreadProgram::new();
    match category {
        Category::BothLockedDifferent | Category::FirstLockedOnly => {
            // Thread 0: allocate, then write under lock 1 (or unlocked it
            // would be another category). Thread 1 conflicts mid-section.
            first.alloc(TARGET, 64);
            first.lock(LockId(1), CodeSite(base_site));
            first.write(TARGET, 0, CodeSite(base_site + 1));
            first.write(TARGET, 0, CodeSite(base_site + 2));
            first.compute(50);
            first.unlock(LockId(1));

            second.compute(1); // Skip past the alloc...
            if category == Category::BothLockedDifferent {
                second.lock(LockId(2), CodeSite(base_site + 0x10));
            } else {
                second.compute(1); // ...and past the holder's lock.
            }
            second.compute(1); // ...and past the holder's first write.
            if second_writes {
                second.write(TARGET, 0, CodeSite(base_site + 0x11));
            } else {
                second.read(TARGET, 0, CodeSite(base_site + 0x11));
            }
            if category == Category::BothLockedDifferent {
                second.unlock(LockId(2));
            }
        }
        Category::SecondLockedOnly => {
            // Thread 1 holds the lock and writes; thread 0's unlocked
            // conflicting access lands inside that section.
            first.alloc(TARGET, 64);
            first.compute(1);
            first.compute(1);
            if second_writes {
                first.write(TARGET, 0, CodeSite(base_site + 0x11));
            } else {
                first.read(TARGET, 0, CodeSite(base_site + 0x11));
            }

            second.lock(LockId(2), CodeSite(base_site + 0x10));
            second.write(TARGET, 0, CodeSite(base_site + 1));
            second.write(TARGET, 0, CodeSite(base_site + 2));
            second.compute(50);
            second.unlock(LockId(2));
        }
        Category::NoLocks => {
            first.alloc(TARGET, 64);
            first.write(TARGET, 0, CodeSite(base_site + 1));
            first.write(TARGET, 0, CodeSite(base_site + 2));
            if second_writes {
                second.write(TARGET, 0, CodeSite(base_site + 0x11));
            } else {
                second.read(TARGET, 0, CodeSite(base_site + 0x11));
            }
        }
    }

    Scenario {
        category,
        programs: vec![first, second],
    }
}

/// Result of classifying a corpus with both detectors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusReport {
    /// Scenarios generated.
    pub total: usize,
    /// Scenarios in which FastTrack (the TSan stand-in) found the race.
    pub tsan_detected: usize,
    /// Scenarios in which Kard found the race.
    pub kard_detected: usize,
    /// Scenarios whose category is ILU by construction.
    pub ilu_by_construction: usize,
}

impl CorpusReport {
    /// Fraction of TSan-detected races that Kard (ILU) also detects — the
    /// measured counterpart of the paper's 69% figure.
    #[must_use]
    pub fn ilu_share(&self) -> f64 {
        if self.tsan_detected == 0 {
            0.0
        } else {
            self.kard_detected as f64 / self.tsan_detected as f64
        }
    }
}

/// Run every scenario under FastTrack and Kard (round-robin schedule) and
/// tally detections.
#[must_use]
pub fn classify_corpus(corpus: &[Scenario]) -> CorpusReport {
    use kard_baselines::FastTrack;
    use kard_rt::{KardExecutor, Session};
    use kard_trace::replay::replay;
    use kard_trace::schedule::interleave_round_robin;

    let mut report = CorpusReport {
        total: corpus.len(),
        ..CorpusReport::default()
    };
    for s in corpus {
        let trace = interleave_round_robin(&s.programs);
        let mut ft = FastTrack::new();
        replay(&trace, &mut ft);
        if !ft.races().is_empty() {
            report.tsan_detected += 1;
        }
        let session = Session::new();
        let mut kard = KardExecutor::new(session.kard().clone());
        replay(&trace, &mut kard);
        if !kard.reports().is_empty() {
            report.kard_detected += 1;
        }
        if s.category.is_ilu() {
            report.ilu_by_construction += 1;
        }
    }
    report
}

/// Detection probability of one scenario across `seeds.len()` seeded
/// schedules — the multiple-runs methodology the paper invokes for
/// schedule-sensitive detection (§5.5, §7.3).
#[must_use]
pub fn detection_probability(scenario: &Scenario, seeds: &[u64]) -> f64 {
    use kard_rt::{KardExecutor, Session};
    use kard_trace::replay::replay;

    if seeds.is_empty() {
        return 0.0;
    }
    // Random schedules may otherwise run an access before the owning
    // thread's allocation: hoist allocations into a phased init, which is
    // the spawn ordering every real program has.
    let mut init = ThreadProgram::new();
    let threads: Vec<ThreadProgram> = scenario
        .programs
        .iter()
        .map(|p| {
            let mut stripped = ThreadProgram::new();
            for &op in p.ops() {
                if matches!(op, kard_trace::Op::Alloc { .. } | kard_trace::Op::Global { .. }) {
                    init.push(op);
                } else {
                    stripped.push(op);
                }
            }
            stripped
        })
        .collect();
    let phased = kard_trace::PhasedProgram { init, threads };

    let detected = seeds
        .iter()
        .filter(|&&seed| {
            let trace = phased.trace_seeded(seed);
            let session = Session::new();
            let mut exec = KardExecutor::new(session.kard().clone());
            replay(&trace, &mut exec);
            !exec.reports().is_empty()
        })
        .count();
    detected as f64 / seeds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_classify_ilu() {
        assert!(Category::BothLockedDifferent.is_ilu());
        assert!(Category::FirstLockedOnly.is_ilu());
        assert!(Category::SecondLockedOnly.is_ilu());
        assert!(!Category::NoLocks.is_ilu());
    }

    #[test]
    fn kard_detects_exactly_the_ilu_scenarios() {
        for (category, expect_kard) in [
            (Category::BothLockedDifferent, true),
            (Category::FirstLockedOnly, true),
            (Category::SecondLockedOnly, true),
            (Category::NoLocks, false),
        ] {
            for variant in 0..2 {
                let s = scenario(category, 7, variant);
                let report = classify_corpus(std::slice::from_ref(&s));
                assert_eq!(
                    report.kard_detected == 1,
                    expect_kard,
                    "{category:?} variant {variant}"
                );
                assert_eq!(report.tsan_detected, 1, "{category:?} is always a race");
            }
        }
    }

    #[test]
    fn default_mix_yields_roughly_69_percent() {
        let corpus = generate_corpus(300, &CorpusMix::default(), 11);
        let report = classify_corpus(&corpus);
        assert_eq!(report.total, 300);
        assert_eq!(report.tsan_detected, 300, "every scenario races");
        let share = report.ilu_share();
        assert!(
            (0.60..0.78).contains(&share),
            "ILU share {share:.2} should be near 0.69"
        );
        // Kard's detections coincide with the constructed ILU categories.
        assert_eq!(report.kard_detected, report.ilu_by_construction);
    }

    #[test]
    fn detection_probability_is_schedule_sensitive() {
        let seeds: Vec<u64> = (0..40).collect();
        // An ILU scenario is detected under many but not all schedules
        // (the overlap must manifest, §3.1).
        let ilu = scenario(Category::BothLockedDifferent, 3, 0);
        let p_ilu = detection_probability(&ilu, &seeds);
        assert!(p_ilu > 0.2, "ILU races detected under many schedules: {p_ilu}");
        // A no-lock scenario is never detected, under any schedule.
        let none = scenario(Category::NoLocks, 3, 0);
        assert_eq!(detection_probability(&none, &seeds), 0.0);
        // Empty seed list degenerates to zero.
        assert_eq!(detection_probability(&ilu, &[]), 0.0);
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let a = generate_corpus(50, &CorpusMix::default(), 3);
        let b = generate_corpus(50, &CorpusMix::default(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.category, y.category);
        }
    }
}
