//! Regression-injection shapes for the drain-side anomaly detector.
//!
//! Each workload is a sequence of *windows* — per-window [`Trace`]s the
//! harness replays one at a time, draining telemetry between windows so
//! the analyzer sees one [`kard_core::MetricKind`] sample per window.
//! The first windows are always clean steady state (identical
//! consistent-lock traffic, so the analyzer's baselines settle); from
//! [`RegressConfig::inject_at`] on, a chosen [`Regression`] is layered
//! on top:
//!
//! * [`Regression::FaultStorm`] — threads start writing each other's
//!   objects under their own locks, so every cross-domain access faults
//!   (and reports ILU races): a step change in fault rate.
//! * [`Regression::KeyThrash`] — one thread starts cycling through far
//!   more distinct critical sections than the hardware key pool holds,
//!   the key-cache thrash signature: a step change in
//!   eviction/demotion pressure. Needs
//!   [`kard_core::KardConfig::virtual_keys`].
//! * [`Regression::LatencyCreep`] — in-section compute grows a little
//!   every window, the slow-leak shape: no single window is alarming,
//!   but section-hold p95 drifts up until the CUSUM accumulates enough
//!   to fire.
//!
//! `BENCH_anomaly.json` (see `benches/bench_anomaly.rs`) gates on these
//! shapes: every injected regression must be flagged on its expected
//! metric within the run, with at most one false positive on
//! [`clean`].

use kard_core::{LockId, MetricKind};
use kard_sim::CodeSite;
use kard_trace::schedule::interleave_seeded;
use kard_trace::{ObjectTag, ThreadProgram, Trace};

/// Lock/site/tag wells, spaced so the steady-state, storm, and thrash
/// namespaces can never collide.
const THRASH_LOCK_BASE: u64 = 10_000;
const THRASH_SITE_BASE: u64 = 0x7000;
const THRASH_TAG_BASE: u64 = 100_000;

/// Which regression a workload injects after the clean lead-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regression {
    /// Cross-thread writes under inconsistent locks: a fault-rate step.
    FaultStorm,
    /// A working set of sections far beyond the hardware key pool: a
    /// key-pressure step.
    KeyThrash,
    /// Slowly growing in-section compute: a section-hold-p95 creep.
    LatencyCreep,
}

impl Regression {
    /// Every shape, for sweeping harnesses.
    pub const ALL: [Regression; 3] = [
        Regression::FaultStorm,
        Regression::KeyThrash,
        Regression::LatencyCreep,
    ];

    /// Stable snake_case name (used in `BENCH_anomaly.json`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Regression::FaultStorm => "fault_storm",
            Regression::KeyThrash => "key_thrash",
            Regression::LatencyCreep => "latency_creep",
        }
    }

    /// The metric this regression is designed to trip. A shape may also
    /// disturb neighboring metrics (a fault storm moves fault-delay p95
    /// too); the harness gate only requires *this* one.
    #[must_use]
    pub fn expected_metric(self) -> MetricKind {
        match self {
            Regression::FaultStorm => MetricKind::FaultRate,
            Regression::KeyThrash => MetricKind::KeyPressure,
            Regression::LatencyCreep => MetricKind::SectionHoldP95,
        }
    }
}

/// Shape of a regression run.
#[derive(Clone, Copy, Debug)]
pub struct RegressConfig {
    /// Logical threads (≥ 2 so a fault storm has a victim domain).
    pub threads: usize,
    /// Total windows, clean lead-in included.
    pub windows: usize,
    /// First window (0-based) that carries the regression.
    pub inject_at: usize,
    /// Objects each thread owns and works over.
    pub objects_per_thread: usize,
    /// Steady-state critical-section entries per thread per window.
    pub sections_per_window: usize,
    /// Writes inside each steady-state section.
    pub writes_per_section: usize,
    /// Distinct sections a [`Regression::KeyThrash`] window cycles
    /// through (should comfortably exceed the 13-key hardware pool).
    pub thrash_sections: usize,
    /// Cross-thread writes per thread per [`Regression::FaultStorm`]
    /// window.
    pub storm_accesses: usize,
    /// Extra in-section compute added per [`Regression::LatencyCreep`]
    /// window (cycles; the creep is `step × windows-since-injection`).
    pub creep_step_cycles: u64,
    /// Seed for the per-window interleavings.
    pub seed: u64,
}

impl Default for RegressConfig {
    fn default() -> Self {
        RegressConfig {
            threads: 4,
            windows: 24,
            inject_at: 12,
            objects_per_thread: 8,
            sections_per_window: 16,
            writes_per_section: 2,
            thrash_sections: 64,
            storm_accesses: 32,
            creep_step_cycles: 400,
            seed: 7,
        }
    }
}

/// One generated run: per-window traces plus the ground truth the
/// harness gates against.
#[derive(Clone, Debug)]
pub struct RegressWorkload {
    /// Shape name (`clean` or the injected [`Regression::name`]).
    pub name: &'static str,
    /// The injected regression, `None` for the clean control.
    pub regression: Option<Regression>,
    /// First regressed window (== `windows.len()` for the control).
    pub inject_at: usize,
    /// Per-window traces, replayed in order with a drain after each.
    pub windows: Vec<Trace>,
}

/// The clean control: every window is identical steady state. The
/// false-positive gate runs over this.
#[must_use]
pub fn clean(cfg: &RegressConfig) -> RegressWorkload {
    build(cfg, None)
}

/// A run that injects `regression` from [`RegressConfig::inject_at`] on.
#[must_use]
pub fn injected(cfg: &RegressConfig, regression: Regression) -> RegressWorkload {
    build(cfg, Some(regression))
}

fn build(cfg: &RegressConfig, regression: Option<Regression>) -> RegressWorkload {
    assert!(cfg.threads >= 2, "a fault storm needs a victim domain");
    assert!(cfg.windows > 0 && cfg.inject_at <= cfg.windows);
    let own_tag = |t: usize, o: usize| ObjectTag((t * cfg.objects_per_thread + o) as u64);
    let own_lock = |t: usize| LockId(1 + t as u64);
    let own_site = |t: usize| CodeSite(0x1000 + t as u64);

    let mut windows = Vec::with_capacity(cfg.windows);
    for window in 0..cfg.windows {
        let injected = regression.filter(|_| window >= cfg.inject_at);
        let mut programs: Vec<ThreadProgram> = vec![ThreadProgram::new(); cfg.threads];
        if window == 0 {
            for (t, p) in programs.iter_mut().enumerate() {
                for o in 0..cfg.objects_per_thread {
                    p.alloc(own_tag(t, o), 64);
                }
            }
        }
        // Steady state, identical every window: each thread works its
        // own objects under its own lock — race- and fault-free.
        let creep = match injected {
            Some(Regression::LatencyCreep) => {
                cfg.creep_step_cycles * (window - cfg.inject_at + 1) as u64
            }
            _ => 0,
        };
        for (t, p) in programs.iter_mut().enumerate() {
            for s in 0..cfg.sections_per_window {
                p.critical_section(own_lock(t), own_site(t), |p| {
                    for w in 0..cfg.writes_per_section {
                        let o = (s + w) % cfg.objects_per_thread;
                        p.write(own_tag(t, o), 0, CodeSite(0x2000 + t as u64));
                    }
                    p.compute(100 + creep);
                });
                p.compute(200);
            }
        }
        match injected {
            Some(Regression::FaultStorm) => {
                // Every thread blasts its right neighbor's objects under
                // its own lock: inconsistent locking, so each
                // cross-domain access faults.
                for (t, p) in programs.iter_mut().enumerate() {
                    let victim = (t + 1) % cfg.threads;
                    p.critical_section(own_lock(t), own_site(t), |p| {
                        for a in 0..cfg.storm_accesses {
                            let o = a % cfg.objects_per_thread;
                            p.write(own_tag(victim, o), 0, CodeSite(0x3000 + t as u64));
                        }
                    });
                }
            }
            Some(Regression::KeyThrash) => {
                // Thread 0 cycles a section working set far beyond the
                // hardware pool; each section touches its own object so
                // every entry needs that section's key resident.
                let p = &mut programs[0];
                if window == cfg.inject_at {
                    for s in 0..cfg.thrash_sections {
                        p.alloc(ObjectTag(THRASH_TAG_BASE + s as u64), 64);
                    }
                }
                for s in 0..cfg.thrash_sections {
                    let s64 = s as u64;
                    p.critical_section(
                        LockId(THRASH_LOCK_BASE + s64),
                        CodeSite(THRASH_SITE_BASE + s64),
                        |p| {
                            p.write(ObjectTag(THRASH_TAG_BASE + s64), 0, CodeSite(0x4000 + s64));
                        },
                    );
                }
            }
            Some(Regression::LatencyCreep) | None => {}
        }
        windows.push(interleave_seeded(&programs, cfg.seed ^ window as u64));
    }
    RegressWorkload {
        name: regression.map_or("clean", Regression::name),
        regression,
        inject_at: regression.map_or(cfg.windows, |_| cfg.inject_at),
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_windows_are_shape_identical_after_the_first() {
        let w = clean(&RegressConfig::default());
        assert_eq!(w.windows.len(), 24);
        assert!(w.regression.is_none());
        let counts: Vec<usize> = w.windows.iter().map(|t| t.events().len()).collect();
        assert!(
            counts[1..].iter().all(|&c| c == counts[1]),
            "steady windows carry identical event counts: {counts:?}"
        );
        assert!(counts[0] > counts[1], "window 0 adds the allocations");
    }

    #[test]
    fn injection_changes_only_the_tail_windows() {
        let cfg = RegressConfig::default();
        let control = clean(&cfg);
        for shape in Regression::ALL {
            let run = injected(&cfg, shape);
            assert_eq!(run.name, shape.name());
            assert_eq!(run.inject_at, cfg.inject_at);
            for w in 1..cfg.inject_at {
                assert_eq!(
                    run.windows[w].events(),
                    control.windows[w].events(),
                    "{}: lead-in window {w} must be clean",
                    shape.name()
                );
            }
            let grows = matches!(shape, Regression::FaultStorm | Regression::KeyThrash);
            if grows {
                assert!(
                    run.windows[cfg.inject_at].events().len()
                        > control.windows[cfg.inject_at].events().len(),
                    "{}: injection adds events",
                    shape.name()
                );
            }
        }
    }

    #[test]
    fn latency_creep_grows_compute_monotonically() {
        let cfg = RegressConfig::default();
        let run = injected(&cfg, Regression::LatencyCreep);
        let cycles: Vec<u64> = run.windows.iter().map(Trace::compute_cycles).collect();
        for w in cfg.inject_at..cfg.windows - 1 {
            assert!(cycles[w + 1] > cycles[w], "creep grows every window");
        }
        assert_eq!(cycles[1], cycles[cfg.inject_at - 1], "lead-in is flat");
    }
}
