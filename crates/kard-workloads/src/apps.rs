//! Models of the four real-world applications, embedding the documented
//! races of Table 6.
//!
//! Each model reproduces the *sharing and locking structure* that made the
//! paper's detections happen:
//!
//! * **Aget** — workers update the global `bwritten` download counter
//!   inside critical sections; the main thread reads it with no lock for
//!   its progress display. 1 ILU race (previously reported upstream).
//! * **memcached** — worker threads update two statistics heap objects
//!   inside critical sections while the main thread reads them unlocked;
//!   and the main thread updates the global `current_time` from its clock
//!   callback (no lock) while workers read it inside critical sections.
//!   3 ILU races. Workers run *nested* sections (item → slab → stats),
//!   which is how memcached reaches 13–16 concurrently executing critical
//!   sections with only a handful of threads (Table 5).
//! * **NGINX** — a racy heap access during initialization: the master
//!   initializes a config object under its init lock while a worker
//!   touches it under a different lock. 1 ILU race.
//! * **pigz** — threads write *different offsets* of a shared header
//!   buffer in very small critical sections under different locks. Not a
//!   real race, but the sections are too short for protection interleaving
//!   to prove the offsets disjoint, so Kard reports it: the paper's single
//!   false positive. TSan (byte-accurate) stays silent.

use kard_core::LockId;
use kard_sim::CodeSite;
use kard_trace::{ObjectTag, PhasedProgram, ThreadProgram};

/// Expected detection outcome for one application (Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpectedRaces {
    /// Reports Kard must produce (true races + false positives).
    pub kard: usize,
    /// Of Kard's reports, how many are false positives.
    pub kard_false_positives: usize,
    /// TSan-reported ILU races.
    pub tsan_ilu: usize,
    /// TSan-reported non-ILU races.
    pub tsan_non_ilu: usize,
}

/// One application model.
#[derive(Clone, Debug)]
pub struct AppModel {
    /// Application name as in Table 6.
    pub name: &'static str,
    /// Phased program: allocations in init, thread 0 is the main thread.
    pub program: PhasedProgram,
    /// Expected Table 6 outcome.
    pub expected: ExpectedRaces,
}

const fn site(n: u64) -> CodeSite {
    CodeSite(n)
}

/// Aget with `workers` download threads plus the main progress thread.
#[must_use]
pub fn aget(workers: usize, iterations: u64) -> AppModel {
    const BWRITTEN: ObjectTag = ObjectTag(0);
    let mut init = ThreadProgram::new();
    init.global(BWRITTEN, 8);
    let mut main = ThreadProgram::new();
    for _ in 0..iterations {
        // Progress display: unlocked read of the shared byte counter.
        main.read(BWRITTEN, 0, site(0xa9e7_0001));
        main.compute(500);
    }

    let mut programs = vec![main];
    for w in 0..workers {
        let mut p = ThreadProgram::new();
        for _ in 0..iterations {
            p.compute(2_000); // Download a chunk.
            p.critical_section(LockId(1), site(0xa9e7_1000), |p| {
                p.write(BWRITTEN, 0, site(0xa9e7_1001 + w as u64));
            });
        }
        programs.push(p);
    }
    AppModel {
        name: "aget",
        program: PhasedProgram { init, threads: programs },
        expected: ExpectedRaces {
            kard: 1,
            kard_false_positives: 0,
            tsan_ilu: 1,
            tsan_non_ilu: 0,
        },
    }
}

/// memcached with `workers` worker threads handling `requests` each.
#[must_use]
pub fn memcached(workers: usize, requests: u64) -> AppModel {
    const STATS1: ObjectTag = ObjectTag(0);
    const STATS2: ObjectTag = ObjectTag(1);
    const TIME: ObjectTag = ObjectTag(2);
    const ITEM_BASE: ObjectTag = ObjectTag(100);
    const SLAB_BASE: ObjectTag = ObjectTag(200);
    const N_ITEMS: u64 = 40;
    const N_SLABS: u64 = 8;

    // Section sites: memcached has 121 distinct critical sections; model
    // the ones that matter (40 item sites, 8 slab sites, 1 stats site) and
    // pad with auxiliary maintenance sites to reach 121 in the harness.
    let mut init = ThreadProgram::new();
    init.alloc(STATS1, 64);
    init.alloc(STATS2, 64);
    init.global(TIME, 8);
    for i in 0..N_ITEMS {
        init.alloc(ObjectTag(ITEM_BASE.0 + i), 64);
    }
    for i in 0..N_SLABS {
        init.alloc(ObjectTag(SLAB_BASE.0 + i), 64);
    }
    let mut main = ThreadProgram::new();
    for r in 0..requests {
        // Clock callback: unlocked write of the time global...
        main.write(TIME, 0, site(0x3e3c_0001));
        // ...and the stats snapshot read, also unlocked.
        main.read(STATS1, 0, site(0x3e3c_0002));
        main.read(STATS2, 0, site(0x3e3c_0003));
        main.compute(800 + (r % 7) * 10);
    }

    let mut programs = vec![main];
    for w in 0..workers {
        let mut p = ThreadProgram::new();
        for r in 0..requests {
            let item = (r * workers as u64 + w as u64) % N_ITEMS;
            let slab = item % N_SLABS;
            // Request parsing happens outside any lock: several schedule
            // points per request keep key holds sparse enough that
            // recycling (not just sharing) occurs even at 32 threads.
            p.compute(200);
            p.compute(200);
            p.compute(200);
            // Nested sections: item lock -> slab lock -> stats lock.
            p.lock(LockId(10 + item), site(0x3e3c_1000 + item));
            p.write(ObjectTag(ITEM_BASE.0 + item), 0, site(0x3e3c_2000 + item));
            // Workers read the clock inside their critical section.
            p.read(TIME, 0, site(0x3e3c_2100));
            p.lock(LockId(60 + slab), site(0x3e3c_3000 + slab));
            p.write(ObjectTag(SLAB_BASE.0 + slab), 0, site(0x3e3c_4000 + slab));
            p.lock(LockId(99), site(0x3e3c_5000));
            p.write(STATS1, 0, site(0x3e3c_5001));
            p.write(STATS2, 0, site(0x3e3c_5002));
            p.unlock(LockId(99));
            p.unlock(LockId(60 + slab));
            p.unlock(LockId(10 + item));
            p.compute(600);
        }
        programs.push(p);
    }
    AppModel {
        name: "memcached",
        program: PhasedProgram { init, threads: programs },
        expected: ExpectedRaces {
            kard: 3,
            kard_false_positives: 0,
            tsan_ilu: 3,
            tsan_non_ilu: 0,
        },
    }
}

/// NGINX with `workers` worker threads serving `requests` each.
#[must_use]
pub fn nginx(workers: usize, requests: u64) -> AppModel {
    const CONFIG: ObjectTag = ObjectTag(0);
    const ACCEPT_STATE: ObjectTag = ObjectTag(1);
    let churn_base = 1_000u64;

    let mut init = ThreadProgram::new();
    init.alloc(CONFIG, 256);
    init.alloc(ACCEPT_STATE, 64);
    let mut main = ThreadProgram::new();
    // Initialization race: master updates shared config under the init
    // lock while workers start up and touch it under the cycle lock.
    main.critical_section(LockId(1), site(0x6e61_0001), |p| {
        p.write(CONFIG, 0, site(0x6e61_0002));
        p.write(CONFIG, 0, site(0x6e61_0003));
        p.compute(2_000);
        p.write(CONFIG, 0, site(0x6e61_0002));
    });
    main.compute(5_000);

    let mut programs = vec![main];
    for w in 0..workers {
        let mut p = ThreadProgram::new();
        // Worker startup reads the config under a *different* lock while
        // the master may still be initializing.
        p.critical_section(LockId(2), site(0x6e61_1000), |p| {
            p.read(CONFIG, 0, site(0x6e61_1001));
            p.read(CONFIG, 0, site(0x6e61_1002));
        });
        for r in 0..requests {
            // Accept mutex: consistent locking, no race.
            p.critical_section(LockId(3), site(0x6e61_2000), |p| {
                p.write(ACCEPT_STATE, 0, site(0x6e61_2001));
            });
            // Connection buffer churn.
            let tag = ObjectTag(churn_base + (w as u64) * 1_000_000 + r);
            p.alloc(tag, 32);
            p.write(tag, 0, site(0x6e61_3000));
            p.free(tag);
            p.compute(1_200);
        }
        programs.push(p);
    }
    AppModel {
        name: "nginx",
        program: PhasedProgram { init, threads: programs },
        expected: ExpectedRaces {
            kard: 1,
            kard_false_positives: 0,
            tsan_ilu: 1,
            tsan_non_ilu: 0,
        },
    }
}

/// pigz with `workers` compression threads handling `blocks` each.
#[must_use]
pub fn pigz(workers: usize, blocks: u64) -> AppModel {
    const HEADER: ObjectTag = ObjectTag(0);
    const JOB_QUEUE: ObjectTag = ObjectTag(1);

    let mut init = ThreadProgram::new();
    init.alloc(HEADER, 1_024);
    init.alloc(JOB_QUEUE, 128);
    let mut main = ThreadProgram::new();
    // The main thread seeds the job queue under the queue lock.
    for b in 0..blocks {
        main.critical_section(LockId(1), site(0x7069_0001), |p| {
            p.write(JOB_QUEUE, 0, site(0x7069_0002));
        });
        main.compute(300 + (b % 3) * 10);
    }

    let mut programs = vec![main];
    for w in 0..workers {
        let mut p = ThreadProgram::new();
        for b in 0..blocks {
            // Take a job: consistent queue lock.
            p.critical_section(LockId(1), site(0x7069_1000), |p| {
                p.write(JOB_QUEUE, 0, site(0x7069_1001));
            });
            p.compute(2_500); // Compress the block.
            // Update this worker's slice of the shared header under the
            // worker's own lock — disjoint offsets, tiny section: the
            // false-positive shape (§7.3).
            let offset = 64 * (w as u64 + 1);
            p.critical_section(LockId(10 + w as u64), site(0x7069_2000 + w as u64), |p| {
                p.write(HEADER, offset, site(0x7069_2001 + w as u64));
            });
            let _ = b;
        }
        programs.push(p);
    }
    AppModel {
        name: "pigz",
        program: PhasedProgram { init, threads: programs },
        expected: ExpectedRaces {
            kard: 1,
            kard_false_positives: 1,
            tsan_ilu: 0,
            tsan_non_ilu: 0,
        },
    }
}

/// All four application models at test-friendly sizes.
#[must_use]
pub fn all_apps(workers: usize, iterations: u64) -> Vec<AppModel> {
    vec![
        aget(workers, iterations),
        memcached(workers, iterations),
        nginx(workers, iterations),
        pigz(workers, iterations),
    ]
}

/// Count distinct raced objects in a baseline detector's report list
/// (Table 6 counts static races, not dynamic repetitions).
#[must_use]
pub fn distinct_raced_objects(races: &[kard_baselines::BaselineRace]) -> usize {
    let mut tags: Vec<_> = races.iter().map(|r| r.tag).collect();
    tags.sort();
    tags.dedup();
    tags.len()
}

/// Count distinct raced objects among Kard's reports (Table 6 counts one
/// warning per racy variable; several section pairs may implicate the same
/// object).
#[must_use]
pub fn distinct_kard_objects(reports: &[kard_core::RaceRecord]) -> usize {
    let mut objs: Vec<_> = reports.iter().map(|r| r.object).collect();
    objs.sort();
    objs.dedup();
    objs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kard_baselines::FastTrack;
    use kard_rt::{KardExecutor, Session};
    use kard_trace::replay::replay;

    fn run_kard(model: &AppModel) -> (usize, Vec<kard_core::RaceRecord>) {
        let session = Session::new();
        let mut exec = KardExecutor::new(session.kard().clone());
        replay(&model.program.trace_round_robin(), &mut exec);
        let reports = exec.reports();
        (distinct_kard_objects(&reports), reports)
    }

    fn run_fasttrack(model: &AppModel) -> usize {
        let mut ft = FastTrack::new();
        replay(&model.program.trace_round_robin(), &mut ft);
        distinct_raced_objects(ft.races())
    }

    #[test]
    fn aget_race_detected_by_both() {
        let model = aget(3, 50);
        let (kard, reports) = run_kard(&model);
        assert_eq!(kard, model.expected.kard, "reports: {reports:#?}");
        assert_eq!(run_fasttrack(&model), model.expected.tsan_ilu);
        // The faulting side is the unlocked main-thread read.
        assert_eq!(reports[0].faulting.section, None);
    }

    #[test]
    fn memcached_three_races_detected() {
        let model = memcached(3, 40);
        let (kard, reports) = run_kard(&model);
        assert_eq!(kard, model.expected.kard, "reports: {reports:#?}");
        assert_eq!(run_fasttrack(&model), model.expected.tsan_ilu);
    }

    #[test]
    fn nginx_init_race_detected() {
        let model = nginx(3, 30);
        let (kard, reports) = run_kard(&model);
        assert_eq!(kard, model.expected.kard, "reports: {reports:#?}");
        assert_eq!(run_fasttrack(&model), model.expected.tsan_ilu);
    }

    #[test]
    fn pigz_false_positive_reported_by_kard_only() {
        let model = pigz(3, 30);
        let (kard, reports) = run_kard(&model);
        assert_eq!(kard, model.expected.kard, "reports: {reports:#?}");
        // TSan is byte-accurate: silent on the disjoint offsets.
        assert_eq!(run_fasttrack(&model), 0);
    }

    #[test]
    fn memcached_nesting_raises_concurrent_sections() {
        let model = memcached(4, 40);
        let session = Session::new();
        let mut exec = KardExecutor::new(session.kard().clone());
        replay(&model.program.trace_round_robin(), &mut exec);
        let stats = exec.stats();
        assert!(
            stats.max_concurrent_sections > 4,
            "nested sections must exceed the thread count, got {}",
            stats.max_concurrent_sections
        );
        assert!(stats.key_recycles > 0, "40+ RW objects over 13 keys");
    }
}
