//! The synthetic workload generator: expand a [`WorkloadSpec`] into
//! per-thread programs whose execution statistics match the spec.
//!
//! Structure of a generated workload (mirroring how the modelled programs
//! actually behave):
//!
//! 1. **Init** (thread 0): register globals, allocate the persistent heap
//!    population, write each object once (first touch).
//! 2. **Steady state** (all threads): a loop of critical-section entries.
//!    Each section site has its own lock and a designated working set of
//!    shared objects — locking is *consistent*, so benchmark workloads
//!    produce zero race reports, exactly as in the paper. Around each
//!    entry the thread performs private accesses, optional
//!    allocate-touch-free churn, and [`kard_trace::Op::Compute`] padding that brings
//!    the baseline cost up to the spec's measured baseline time.
//!
//! Everything is scaled by `scale` so tests run in milliseconds while the
//! benchmark harness can run large fractions of the real event counts.

use crate::spec::WorkloadSpec;
use kard_core::LockId;
use kard_sim::{CodeSite, CostModel};
use kard_trace::{ObjectTag, PhasedProgram, ThreadProgram};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of program threads (the paper uses 4 by default, up to 32
    /// for the scalability study).
    pub threads: usize,
    /// Scale factor applied to object counts and CS entries (1.0 = the
    /// paper's full counts).
    pub scale: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            threads: 4,
            scale: 1.0,
        }
    }
}

fn scaled(x: u64, scale: f64) -> u64 {
    if x == 0 {
        0
    } else {
        ((x as f64 * scale).round() as u64).max(1)
    }
}

/// The scaled shape of a workload (exposed so harnesses can report what
/// was actually executed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthShape {
    /// Persistent heap objects allocated at init.
    pub heap_objects: u64,
    /// Globals registered at init.
    pub global_objects: u64,
    /// Read-only shared objects.
    pub shared_ro: u64,
    /// Read-write shared objects.
    pub shared_rw: u64,
    /// Total critical-section entries across threads.
    pub cs_entries: u64,
    /// Compute padding per entry, in cycles.
    pub compute_per_entry: u64,
    /// Total baseline cycle budget the padding targets.
    pub baseline_budget: u64,
}

/// Compute the scaled shape for a spec.
#[must_use]
pub fn shape(spec: &WorkloadSpec, cfg: &SynthConfig) -> SynthShape {
    let scale = cfg.scale;
    let entries = scaled(spec.cs_entries, scale);
    let churn_allocs = spec.churn_per_entry * spec.cs_entries;
    let persistent = spec.heap_objects.saturating_sub(churn_allocs).max(1);
    let heap_objects = scaled(persistent, scale);
    let global_objects = scaled(spec.global_objects, scale);
    let population = heap_objects + global_objects;
    let shared_rw = scaled(spec.shared_rw, scale).min(population);
    let shared_ro = scaled(spec.shared_ro, scale).min(population - shared_rw.min(population));

    // Budget the Compute padding so the baseline run costs what the paper
    // measured (scaled). The estimate charges the baseline cost model's
    // per-event prices; the runner measures the real figure.
    let cost = CostModel::paper();
    let budget = (spec.baseline_cycles() as f64 * scale) as u64;
    let accesses_per_entry = spec.ro_touches_per_entry
        + spec.rw_touches_per_entry
        + spec.private_touches_per_entry
        + 2 * spec.churn_per_entry;
    let est_fixed = (heap_objects + global_objects) * (cost.malloc_baseline + cost.mem_access)
        + entries
            * (2 * cost.lock_op
                + accesses_per_entry * cost.mem_access
                + spec.churn_per_entry * cost.malloc_baseline);
    let compute_per_entry = budget.saturating_sub(est_fixed).checked_div(entries).unwrap_or(0);

    SynthShape {
        heap_objects,
        global_objects,
        shared_ro,
        shared_rw,
        cs_entries: entries,
        compute_per_entry,
        baseline_budget: budget,
    }
}

/// Deterministic mixing function used instead of a stateful RNG so that
/// each thread's program is independent of generation order.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x
}

/// Expand `spec` into a phased program: an init prefix that registers
/// globals, allocates the persistent heap, and first-touches everything,
/// followed by per-thread steady-state programs.
///
/// Objects use tags `0..globals` (globals), `globals..globals+heap`
/// (persistent heap). Shared read-write objects are the first tags of the
/// population, shared read-only the next, the rest private. Churn objects
/// use tags above the persistent population, unique per entry.
///
/// # Panics
///
/// Panics if `cfg.threads` is zero.
#[must_use]
pub fn build_programs(spec: &WorkloadSpec, cfg: &SynthConfig) -> PhasedProgram {
    assert!(cfg.threads > 0, "at least one thread required");
    let sh = shape(spec, cfg);
    let population = sh.heap_objects + sh.global_objects;
    let mut programs = vec![ThreadProgram::new(); cfg.threads];

    // Init phase: program startup owns allocation and first touch.
    let mut init = ThreadProgram::new();
    for g in 0..sh.global_objects {
        init.global(ObjectTag(g), spec.avg_object_size.max(8));
    }
    for h in 0..sh.heap_objects {
        init.alloc(ObjectTag(sh.global_objects + h), spec.avg_object_size.max(1));
    }
    // First touch the resident fraction of the population. Objects the
    // critical sections use are touched by those accesses later, so their
    // pages become resident regardless; the fraction models how much of
    // the *remaining* allocation volume a real run keeps resident
    // (NGINX/memcached allocate far more than they touch, §7.5).
    let resident = ((population as f64) * spec.resident_fraction).round() as u64;
    for tag in 0..resident.min(population) {
        init.write(ObjectTag(tag), 0, CodeSite(0x100));
    }

    // Locking discipline: read-write shared objects are partitioned into
    // lock groups, and every section touching group `g` acquires lock
    // `g + 1` (the same mutex locked at different call sites — ordinary,
    // and crucially *consistent*, so benchmark workloads report no races,
    // matching the paper). Read-only shared objects may be read from any
    // section: concurrent shared reads are race-free by definition.
    let sections = spec.total_sections.max(1);
    let n_locks = if sh.shared_rw > 0 {
        sections.min(sh.shared_rw)
    } else {
        sections
    };
    let lock_of = |section: u64| LockId(1 + section % n_locks);
    let rw_of = |section: u64, i: u64| -> Option<ObjectTag> {
        if sh.shared_rw == 0 {
            return None;
        }
        let group = section % n_locks;
        // Objects o with o % n_locks == group, i.e. group, group+n_locks, ...
        let group_size = (sh.shared_rw - group).div_ceil(n_locks);
        if group_size == 0 {
            return None;
        }
        Some(ObjectTag(group + (i % group_size) * n_locks))
    };
    let ro_of = |section: u64, i: u64| -> Option<ObjectTag> {
        if sh.shared_ro == 0 {
            return None;
        }
        Some(ObjectTag(sh.shared_rw + (section + i * sections) % sh.shared_ro))
    };

    // Steady state: split entries across threads.
    let per_thread = sh.cs_entries / cfg.threads as u64;
    let remainder = sh.cs_entries % cfg.threads as u64;
    let mut churn_tag = population;
    for (k, p) in programs.iter_mut().enumerate() {
        let my_entries = per_thread + u64::from((k as u64) < remainder);
        for j in 0..my_entries {
            let section = (j + k as u64) % sections;
            let site = CodeSite(0x1000 + section);
            let lock = lock_of(section);

            // Private, non-critical traffic over the *resident* part of
            // the private population (a real program's steady state walks
            // its live data, not its untouched allocations).
            for i in 0..spec.private_touches_per_entry {
                let start = sh.shared_rw + sh.shared_ro;
                let end = population.min(resident.max(start + 1));
                let span = end.saturating_sub(start);
                if span > 0 {
                    let tag = start + mix(k as u64 * 1_000_003 + j, i) % span;
                    p.read(ObjectTag(tag), 0, CodeSite(0x2000 + i));
                }
            }

            // Connection/request churn (NGINX-style): allocate, touch, free.
            for _ in 0..spec.churn_per_entry {
                let tag = ObjectTag(churn_tag);
                churn_tag += 1;
                p.alloc(tag, spec.avg_object_size.max(1));
                p.write(tag, 0, CodeSite(0x3000));
                p.free(tag);
            }

            // The critical section itself.
            p.lock(lock, site);
            for i in 0..spec.rw_touches_per_entry {
                if let Some(tag) = rw_of(section, i) {
                    p.write(tag, 0, CodeSite(0x4000 + section));
                }
            }
            for i in 0..spec.ro_touches_per_entry {
                if let Some(tag) = ro_of(section, mix(j, i) % sh.shared_ro.max(1)) {
                    p.read(tag, 0, CodeSite(0x5000 + section));
                }
            }
            p.unlock(lock);

            if sh.compute_per_entry > 0 {
                p.compute(sh.compute_per_entry);
            }
        }
    }
    PhasedProgram {
        init,
        threads: programs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table3;
    use kard_trace::Op;

    fn tiny(name: &str) -> (WorkloadSpec, SynthConfig) {
        (
            table3::by_name(name).unwrap(),
            SynthConfig {
                threads: 4,
                scale: 1e-3,
            },
        )
    }

    #[test]
    fn shape_scales_counts() {
        let (spec, cfg) = tiny("fluidanimate");
        let sh = shape(&spec, &cfg);
        assert_eq!(sh.cs_entries, 4_402);
        assert_eq!(sh.heap_objects, 135);
        assert!(sh.compute_per_entry > 0);
    }

    #[test]
    fn zero_counts_stay_zero() {
        let (spec, cfg) = tiny("x264"); // no shared objects at all
        let sh = shape(&spec, &cfg);
        assert_eq!(sh.shared_ro, 0);
        assert_eq!(sh.shared_rw, 0);
    }

    #[test]
    fn programs_schedule_without_deadlock() {
        for name in ["streamcluster", "memcached", "water_nsquared", "nginx"] {
            let (spec, cfg) = tiny(name);
            let phased = build_programs(&spec, &cfg);
            assert_eq!(phased.threads.len(), 4);
            let trace = phased.trace_seeded(1);
            let expected = shape(&spec, &cfg).cs_entries;
            assert_eq!(trace.cs_entry_count(), expected, "{name}");
        }
    }

    #[test]
    fn entries_split_across_threads() {
        let (spec, cfg) = tiny("barnes");
        let phased = build_programs(&spec, &cfg);
        let sh = shape(&spec, &cfg);
        let per_thread: Vec<u64> = phased
            .threads
            .iter()
            .map(|p| {
                p.ops()
                    .iter()
                    .filter(|op| matches!(op, Op::Lock { .. }))
                    .count() as u64
            })
            .collect();
        assert_eq!(per_thread.iter().sum::<u64>(), sh.cs_entries);
        let max = per_thread.iter().max().unwrap();
        let min = per_thread.iter().min().unwrap();
        assert!(max - min <= 1, "balanced split");
    }

    #[test]
    fn churn_allocations_are_freed() {
        let (spec, cfg) = tiny("nginx");
        let phased = build_programs(&spec, &cfg);
        let count = |pred: fn(&Op) -> bool| -> u64 {
            let steady: usize = phased
                .threads
                .iter()
                .map(|p| p.ops().iter().filter(|o| pred(o)).count())
                .sum();
            (steady + phased.init.ops().iter().filter(|o| pred(o)).count()) as u64
        };
        let allocs = count(|o| matches!(o, Op::Alloc { .. }));
        let frees = count(|o| matches!(o, Op::Free { .. }));
        let sh = shape(&spec, &cfg);
        assert_eq!(allocs - frees, sh.heap_objects);
        assert!(frees > 0, "nginx churns");
    }

    #[test]
    fn generation_is_deterministic() {
        let (spec, cfg) = tiny("memcached");
        let a = build_programs(&spec, &cfg);
        let b = build_programs(&spec, &cfg);
        assert_eq!(a.init.ops(), b.init.ops());
        for (x, y) in a.threads.iter().zip(&b.threads) {
            assert_eq!(x.ops(), y.ops());
        }
    }

    #[test]
    fn compute_padding_tracks_baseline_budget() {
        let (spec, cfg) = tiny("raytrace");
        let sh = shape(&spec, &cfg);
        let padding_total = sh.compute_per_entry * sh.cs_entries;
        assert!(
            padding_total <= sh.baseline_budget,
            "padding must not exceed the budget"
        );
        assert!(
            padding_total > sh.baseline_budget / 2,
            "padding should dominate the baseline budget"
        );
    }
}
