//! Workload models reproducing the paper's evaluation programs.
//!
//! The paper evaluates Kard on 15 PARSEC/SPLASH-2x benchmarks and four
//! real-world applications (Table 3). Running those exact binaries is
//! neither possible nor meaningful on the simulated substrate, so this
//! crate models each program by the three factors the paper identifies as
//! driving Kard's overhead (§7.2):
//!
//! 1. the number of protected sharable objects (→ `pkey_mprotect` calls
//!    and dTLB pressure from unique pages),
//! 2. the number of critical-section entries (→ map traversals + WRPKRU),
//! 3. the baseline work those costs amortize against.
//!
//! [`spec::WorkloadSpec`] captures each benchmark's execution statistics
//! *as measured by the paper* (Table 3's left columns are inputs, its
//! right columns are the outputs we try to reproduce); [`synth`] expands a
//! spec into per-thread programs; [`runner`] executes a workload under
//! Baseline / Alloc / Kard / TSan-model configurations and reports
//! overheads; [`apps`] models NGINX, memcached, pigz, and Aget including
//! their documented real races (Table 6); [`racegen`] generates the random
//! race corpus behind the §3.1 ILU-share analysis; [`regress`] builds
//! the windowed regression-injection shapes (fault storm, key thrash,
//! latency creep) that gate the drain-side anomaly detector; [`storm`]
//! generates
//! the connect/blast/disconnect session traffic that drives the
//! `kard-server` firehose benchmarks and overload tests; [`work_steal`]
//! adds work-stealing deque and async task-pool shapes (plus the
//! [`work_steal::TrafficShape`] registry) so scheduler-style traffic rides
//! the same storm-session harnesses.

#![deny(missing_docs)]

pub mod apps;
pub mod native;
pub mod racegen;
pub mod regress;
pub mod runner;
pub mod spec;
pub mod storm;
pub mod synth;
pub mod table3;
pub mod work_steal;

pub use runner::{ComparisonResult, VariantResult};
pub use spec::{Suite, WorkloadSpec};
pub use work_steal::TrafficShape;
