//! The 19 workload parameterizations of Table 3.
//!
//! Input columns (objects, critical sections, baseline time/memory/dTLB)
//! are transcribed from the paper; `paper` carries the reported outputs so
//! harnesses can print paper-vs-measured side by side. Model fields not in
//! the table (touches per entry, object sizes) are chosen per workload and
//! documented inline where the paper motivates a specific value.

use crate::spec::{PaperResults, Suite, WorkloadSpec};

#[allow(clippy::too_many_arguments)]
const fn spec(
    name: &'static str,
    suite: Suite,
    heap: u64,
    global: u64,
    ro: u64,
    rw: u64,
    total_cs: u64,
    active_cs: u64,
    entries: u64,
    baseline_secs: f64,
    baseline_rss_kib: u64,
    baseline_dtlb: f64,
    avg_object_size: u64,
    ro_touches: u64,
    rw_touches: u64,
    private_touches: u64,
    churn_per_entry: u64,
    paper: PaperResults,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        suite,
        heap_objects: heap,
        global_objects: global,
        shared_ro: ro,
        shared_rw: rw,
        total_sections: total_cs,
        active_sections: active_cs,
        cs_entries: entries,
        baseline_secs,
        baseline_rss_bytes: baseline_rss_kib * 1024,
        baseline_dtlb_miss: baseline_dtlb,
        avg_object_size,
        ro_touches_per_entry: ro_touches,
        rw_touches_per_entry: rw_touches,
        private_touches_per_entry: private_touches,
        resident_fraction: 1.0,
        churn_per_entry,
        paper,
    }
}

const fn paper(
    alloc: f64,
    kard: f64,
    tsan: f64,
    mem: f64,
    dtlb_alloc: f64,
    dtlb_kard: f64,
) -> PaperResults {
    PaperResults {
        alloc_pct: alloc,
        kard_pct: kard,
        tsan_pct: tsan,
        kard_mem_pct: mem,
        dtlb_alloc_pct: dtlb_alloc,
        dtlb_kard_pct: dtlb_kard,
    }
}

/// The 15 PARSEC and SPLASH-2x benchmarks of Table 3.
#[must_use]
pub fn benchmarks() -> Vec<WorkloadSpec> {
    use Suite::{Parsec, Splash2x};
    vec![
        spec("streamcluster", Parsec, 1_818, 20, 0, 1, 6, 3, 115_760,
            4.96, 12_592, 0.000_13, 64, 0, 1, 4,0,
            paper(0.1, 0.3, 2264.7, 6.1, 5.1, 9.2)),
        spec("x264", Parsec, 15, 420, 0, 0, 2, 2, 33_521,
            1.749, 29_732, 0.000_20, 4096, 0, 0, 4,0,
            paper(0.4, 3.0, 485.3, 2.0, 0.6, 2.6)),
        spec("vips", Parsec, 102, 3_933, 377, 213, 5, 2, 37,
            2.145, 24_360, 0.000_42, 128, 4, 2, 8,0,
            paper(0.6, 1.3, 889.8, 3.3, 0.7, 3.8)),
        spec("bodytrack", Parsec, 8_717, 125, 7, 48, 8, 1, 56_196,
            3.268, 20_224, 0.000_03, 64, 1, 2, 12,0,
            paper(4.1, 10.4, 655.6, 123.2, 21.9, 55.2)),
        // fluidanimate: 4.4M critical-section entries in 3.25 s is the
        // paper's canonical CS-entry-dominated outlier (§7.2).
        spec("fluidanimate", Parsec, 135_438, 25, 24, 5, 8, 4, 4_402_000,
            3.251, 374_760, 0.000_18, 32, 1, 2, 2,0,
            paper(19.6, 61.9, 1222.3, 142.6, 32.3, 72.0)),
        spec("ocean_cp", Splash2x, 370, 30, 2, 2, 24, 2, 6_664,
            3.803, 913_048, 0.000_30, 16_384, 1, 1, 8,0,
            paper(-8.3, -5.9, 911.4, 0.3, 0.2, 0.4)),
        spec("ocean_ncp", Splash2x, 16, 38, 0, 4, 23, 2, 6_504,
            5.631, 922_128, 0.011_49, 32_768, 0, 1, 8,0,
            paper(0.0, 0.0, 1036.2, 0.3, 0.0, 0.0)),
        spec("raytrace", Splash2x, 6, 60, 1, 2, 8, 3, 986_046,
            4.355, 7_712, 0.000_02, 256, 1, 1, 2,0,
            paper(1.3, 3.7, 1368.6, 28.5, 0.3, 0.5)),
        // water_nsquared: 128,007 heap objects of 24 B (§7.5) and 96,000
        // read-only shared objects — the dTLB-pressure outlier. Critical
        // sections sweep a large slice of the molecule array.
        spec("water_nsquared", Splash2x, 128_007, 87, 96_000, 2, 17, 4, 96_148,
            10.022, 12_260, 0.000_01, 24, 48, 1, 16,0,
            paper(9.1, 18.0, 698.0, 4145.9, 587.3, 890.2)),
        spec("water_spatial", Splash2x, 37_148, 99, 1, 1, 2, 2, 675,
            3.259, 25_324, 0.000_04, 24, 1, 1, 64,0,
            paper(2.9, 5.6, 546.1, 516.9, 147.1, 172.6)),
        spec("radix", Splash2x, 17, 13, 2, 1, 13, 4, 103,
            5.173, 1_051_536, 0.004_07, 65_536, 1, 1, 8,0,
            paper(-1.4, -1.0, 187.4, 0.2, 0.1, 0.1)),
        spec("lu_ncb", Splash2x, 12, 11, 2, 1, 6, 2, 1_040,
            3.917, 34_952, 0.000_49, 8_192, 1, 1, 8,0,
            paper(-5.7, -5.2, 292.9, 5.9, -3.7, -3.4)),
        spec("lu_cb", Splash2x, 26, 10, 0, 3, 6, 2, 2_080,
            3.517, 35_092, 0.000_03, 8_192, 0, 1, 8,0,
            paper(-7.8, -4.7, 259.0, 6.1, 1.4, 2.3)),
        // barnes: 1.78M CS entries, the other CS-entry outlier.
        spec("barnes", Splash2x, 44, 54, 11, 13, 5, 5, 1_784_848,
            5.126, 68_000, 0.000_11, 1_024, 2, 3, 2,0,
            paper(2.9, 34.1, 1582.9, 3.3, 3.0, 37.1)),
        spec("fft", Splash2x, 11, 26, 14, 1, 8, 2, 32,
            2.874, 789_588, 0.000_92, 131_072, 2, 1, 8,0,
            paper(0.7, 1.0, 265.1, 0.3, -0.2, -0.2)),
    ]
}

/// The four real-world applications of Table 3.
#[must_use]
pub fn real_world() -> Vec<WorkloadSpec> {
    use Suite::RealWorld;
    let mut rows = vec![
        // NGINX allocates ~half a million small request/connection objects
        // and enters the accept-mutex critical section per request pair.
        spec("nginx", RealWorld, 500_007, 461, 0, 100_002, 26, 3, 200_008,
            15.144, 5_812, 0.001_45, 32, 0, 1, 4,2,
            paper(13.3, 15.1, 258.9, 202.1, 51.9, 65.2)),
        spec("memcached", RealWorld, 6_985, 107, 24, 62, 121, 13, 161_992,
            2.009, 5_892, 0.001_10, 64, 1, 1, 4,0,
            paper(0.0, 0.1, 45.7, 31.8, 9.6, 18.2)),
        spec("pigz", RealWorld, 861, 53, 7, 10, 10, 5, 45_782,
            0.254, 5_368, 0.000_28, 1_024, 1, 1, 4,0,
            paper(2.9, 5.1, 229.9, 52.5, 31.4, 71.2)),
        spec("aget", RealWorld, 24, 10, 0, 1, 2, 1, 56_196,
            0.944, 2_468, 0.002_94, 4_096, 0, 1, 4,0,
            paper(0.6, 1.4, 464.3, 95.3, 3.7, 12.3)),
    ];
    // NGINX keeps ~3% of its persistent allocations resident at peak: its
    // 500k allocations are request-lifetime, matching the paper's modest
    // 202% RSS overhead despite the huge allocation count.
    rows[0].resident_fraction = 0.03;
    // memcached pre-allocates slab chunks it never touches during the
    // twemperf run (1 B values), so its resident set is a sliver of the
    // 6,985 allocations — the paper's 31.8% RSS overhead is mostly Kard's
    // own runtime footprint.
    rows[1].resident_fraction = 0.02;
    rows
}

/// All 19 workloads.
#[must_use]
pub fn all() -> Vec<WorkloadSpec> {
    let mut v = benchmarks();
    v.extend(real_world());
    v
}

/// Look up a workload by its Table 3 name.
#[must_use]
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_19_rows() {
        assert_eq!(benchmarks().len(), 15);
        assert_eq!(real_world().len(), 4);
        assert_eq!(all().len(), 19);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn transcription_spot_checks() {
        let f = by_name("fluidanimate").unwrap();
        assert_eq!(f.cs_entries, 4_402_000);
        assert_eq!(f.heap_objects, 135_438);
        assert!((f.paper.kard_pct - 61.9).abs() < 1e-9);

        let w = by_name("water_nsquared").unwrap();
        assert_eq!(w.shared_ro, 96_000);
        assert_eq!(w.avg_object_size, 24);
        assert!((w.paper.kard_mem_pct - 4145.9).abs() < 1e-9);

        let m = by_name("memcached").unwrap();
        assert_eq!(m.total_sections, 121);
        assert_eq!(m.active_sections, 13);
        assert_eq!(m.cs_entries, 161_992);
    }

    #[test]
    fn real_world_suite_tagging() {
        assert!(real_world().iter().all(|s| s.suite == Suite::RealWorld));
        assert!(benchmarks()
            .iter()
            .all(|s| s.suite != Suite::RealWorld));
    }
}
