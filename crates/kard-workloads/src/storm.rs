//! Storm traffic: short-lived sessions that connect, blast bursts of
//! events, and disconnect.
//!
//! The firehose service (`kard-server`) is sized by its behavior under
//! exactly this shape — many independent sessions arriving at once, each
//! sending a tight burst of section-heavy traffic and then going away.
//! This module generates that traffic as plain [`kard_trace::Event`]
//! batches so every harness (the overload integration test, the
//! `bench_firehose` sweep, the `firehose_client` example) drives the
//! server with the same generator instead of inventing its own.
//!
//! Each session is a self-contained multi-threaded logical program,
//! pre-interleaved into bursts: burst 0 allocates the session's objects
//! (and, for racy sessions, performs the paper's Figure 1a-style
//! inconsistent-lock pair), later bursts are steady-state critical
//! sections under consistent per-thread locks — race-free by
//! construction. A racy session produces exactly
//! [`StormSession::expected_races`] reports when replayed in order.

use kard_core::LockId;
use kard_sim::CodeSite;
use kard_trace::schedule::{interleave_round_robin, interleave_seeded};
use kard_trace::{Event, ObjectTag, ThreadProgram};

/// Shape of one storm run.
#[derive(Clone, Copy, Debug)]
pub struct StormConfig {
    /// Number of client sessions.
    pub sessions: usize,
    /// Logical threads per session.
    pub threads: usize,
    /// Objects each logical thread allocates and works over.
    pub objects_per_thread: usize,
    /// Bursts each session sends (burst 0 carries the allocations).
    pub bursts: usize,
    /// Critical-section entries per thread per burst.
    pub entries_per_burst: usize,
    /// Writes inside each critical section.
    pub writes_per_entry: usize,
    /// How many of the sessions embed one ILU race (an inconsistent-lock
    /// write/read pair on a shared object) in their first burst.
    pub racy_sessions: usize,
    /// Seed for the steady-state interleavings.
    pub seed: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            sessions: 4,
            threads: 2,
            objects_per_thread: 4,
            bursts: 3,
            entries_per_burst: 16,
            writes_per_entry: 2,
            racy_sessions: 0,
            seed: 1,
        }
    }
}

/// One generated session: a name (the server shards by its hash) and the
/// pre-interleaved event bursts to blast at the server.
#[derive(Clone, Debug)]
pub struct StormSession {
    /// Session name, `storm-<index>` by default.
    pub name: String,
    /// Event batches, sent burst by burst.
    pub bursts: Vec<Vec<Event>>,
    /// Race reports this session's traffic must produce when replayed in
    /// order (0 for consistent sessions, 1 for racy ones).
    pub expected_races: usize,
}

impl StormSession {
    /// Total events across all bursts.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.bursts.iter().map(Vec::len).sum()
    }
}

/// Generate session `index` of a storm.
///
/// # Panics
///
/// Panics if `threads`, `bursts`, or `objects_per_thread` is zero.
#[must_use]
pub fn session(cfg: &StormConfig, index: usize) -> StormSession {
    assert!(cfg.threads > 0, "at least one thread per session");
    assert!(cfg.bursts > 0, "at least one burst per session");
    assert!(cfg.objects_per_thread > 0, "objects_per_thread must be > 0");
    let racy = index < cfg.racy_sessions && cfg.threads >= 2;
    let own_tag = |t: usize, o: usize| ObjectTag((t * cfg.objects_per_thread + o) as u64);
    let shared_tag = ObjectTag((cfg.threads * cfg.objects_per_thread) as u64);
    let own_lock = |t: usize| LockId(1 + t as u64);
    let own_site = |t: usize| CodeSite(0x1000 + t as u64);

    let mut bursts = Vec::with_capacity(cfg.bursts);
    for burst in 0..cfg.bursts {
        let mut programs: Vec<ThreadProgram> = vec![ThreadProgram::new(); cfg.threads];
        if burst == 0 {
            // Connect phase: every thread allocates its working set; the
            // racy pair mirrors Figure 1a — thread 0 writes the shared
            // object under lock A while thread 1 reads it twice under
            // lock B, and the round-robin interleave below overlaps the
            // two sections.
            for (t, p) in programs.iter_mut().enumerate() {
                for o in 0..cfg.objects_per_thread {
                    p.alloc(own_tag(t, o), 64);
                }
            }
            if racy {
                programs[0].alloc(shared_tag, 64);
                programs[0].critical_section(
                    LockId(1000),
                    CodeSite(0xaaa0),
                    |p| {
                        p.write(shared_tag, 0, CodeSite(0xaaa1));
                    },
                );
                programs[1].critical_section(
                    LockId(1001),
                    CodeSite(0xbbb0),
                    |p| {
                        p.read(shared_tag, 0, CodeSite(0xbbb1));
                        p.read(shared_tag, 0, CodeSite(0xbbb2));
                    },
                );
            }
        }
        for (t, p) in programs.iter_mut().enumerate() {
            for e in 0..cfg.entries_per_burst {
                p.lock(own_lock(t), own_site(t));
                for w in 0..cfg.writes_per_entry {
                    let o = (e + w) % cfg.objects_per_thread;
                    p.write(own_tag(t, o), ((e + w) as u64 % 8) * 8, CodeSite(0x2000 + t as u64));
                }
                p.unlock(own_lock(t));
            }
        }
        // Burst 0 interleaves round-robin so an injected race reliably
        // overlaps; steady-state bursts vary by seed, session, and burst.
        let trace = if burst == 0 {
            interleave_round_robin(&programs)
        } else {
            interleave_seeded(
                &programs,
                cfg.seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((index * 1024 + burst) as u64),
            )
        };
        bursts.push(trace.events().to_vec());
    }

    StormSession {
        name: format!("storm-{index}"),
        bursts,
        expected_races: usize::from(racy),
    }
}

/// Generate every session of a storm.
#[must_use]
pub fn sessions(cfg: &StormConfig) -> Vec<StormSession> {
    (0..cfg.sessions).map(|i| session(cfg, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kard_rt::{KardExecutor, Session};
    use kard_trace::Op;

    fn replay_session(s: &StormSession) -> usize {
        let session = Session::new();
        let mut exec = KardExecutor::new(session.kard().clone());
        use kard_trace::replay::Executor as _;
        exec.start(
            s.bursts
                .iter()
                .flatten()
                .map(|e| e.thread + 1)
                .max()
                .unwrap_or(1),
        );
        for burst in &s.bursts {
            for e in burst {
                exec.on_event(e.thread, &e.op);
            }
        }
        exec.reports().len()
    }

    #[test]
    fn consistent_sessions_are_race_free() {
        let cfg = StormConfig { racy_sessions: 0, ..StormConfig::default() };
        for s in sessions(&cfg) {
            assert_eq!(s.expected_races, 0);
            assert_eq!(replay_session(&s), 0, "{} reported a race", s.name);
        }
    }

    #[test]
    fn racy_sessions_report_exactly_one_race() {
        let cfg = StormConfig { racy_sessions: 2, ..StormConfig::default() };
        let all = sessions(&cfg);
        for s in &all[..2] {
            assert_eq!(s.expected_races, 1);
            assert_eq!(replay_session(s), 1, "{} missed its race", s.name);
        }
        for s in &all[2..] {
            assert_eq!(s.expected_races, 0);
            assert_eq!(replay_session(s), 0);
        }
    }

    #[test]
    fn bursts_have_the_configured_shape() {
        let cfg = StormConfig {
            sessions: 1,
            threads: 3,
            objects_per_thread: 2,
            bursts: 4,
            entries_per_burst: 5,
            writes_per_entry: 2,
            racy_sessions: 0,
            seed: 9,
        };
        let s = session(&cfg, 0);
        assert_eq!(s.bursts.len(), 4);
        // Burst 0 = allocations + sections; later bursts = sections only.
        let allocs = |b: &[Event]| b.iter().filter(|e| matches!(e.op, Op::Alloc { .. })).count();
        assert_eq!(allocs(&s.bursts[0]), 6);
        assert_eq!(allocs(&s.bursts[1]), 0);
        let entries = |b: &[Event]| b.iter().filter(|e| matches!(e.op, Op::Lock { .. })).count();
        for b in &s.bursts {
            assert_eq!(entries(b), 15, "3 threads x 5 entries");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = StormConfig { racy_sessions: 1, ..StormConfig::default() };
        let a = sessions(&cfg);
        let b = sessions(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.bursts, y.bursts);
        }
    }

    #[test]
    fn steady_state_bursts_differ_across_sessions() {
        let cfg = StormConfig { sessions: 2, ..StormConfig::default() };
        let all = sessions(&cfg);
        assert_ne!(
            all[0].bursts[1], all[1].bursts[1],
            "seeded interleavings should vary by session"
        );
    }
}
