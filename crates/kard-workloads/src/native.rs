//! Baseline executors: the *Baseline* and *Alloc* configurations of
//! Table 3, run over the same simulated machine as Kard so that cycle and
//! dTLB comparisons are apples-to-apples.
//!
//! * [`NativeExecutor`] models an uninstrumented run with a glibc-style
//!   allocator: objects are packed consecutively into pages, allocation
//!   costs the malloc fast path, accesses are plain (default protection
//!   key, no faults possible).
//! * [`AllocOnlyExecutor`] swaps in Kard's consolidated unique-page
//!   allocator but performs **no detection** — the paper's "Alloc"
//!   configuration, isolating the allocator's contribution (mmap per
//!   allocation + dTLB pressure from unique virtual pages).

use kard_alloc::{KardAlloc, ObjectId, ObjectInfo};
use kard_sim::{
    AccessKind, Machine, MachineConfig, ThreadId, VirtAddr, PAGE_SIZE,
};
use kard_trace::{Executor, ObjectTag, Op};
use std::collections::HashMap;
use std::sync::Arc;

/// Metrics of one executed variant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VariantMetrics {
    /// Total cycles charged across all threads.
    pub cycles: u64,
    /// Aggregate dTLB miss rate.
    pub dtlb_miss_rate: f64,
    /// Peak Linux-style RSS (populated PTEs × page size).
    pub peak_rss_bytes: u64,
    /// Peak physically resident bytes (shared frames counted once).
    pub peak_phys_bytes: u64,
    /// `mmap` system calls issued.
    pub mmaps: u64,
    /// `pkey_mprotect` system calls issued.
    pub pkey_mprotects: u64,
    /// Simulated #GP faults taken.
    pub faults: u64,
    /// Memory accesses performed.
    pub accesses: u64,
}

/// Collect metrics from a machine after a run.
#[must_use]
pub fn metrics_of(machine: &Machine) -> VariantMetrics {
    let counters = machine.counters();
    VariantMetrics {
        cycles: machine.now(),
        dtlb_miss_rate: machine.tlb_stats().miss_rate(),
        peak_rss_bytes: machine.peak_linux_rss_bytes(),
        peak_phys_bytes: machine.mem_stats().peak_resident_bytes,
        mmaps: counters.mmap,
        pkey_mprotects: counters.pkey_mprotect,
        faults: counters.faults,
        accesses: counters.accesses,
    }
}

/// Glibc-granule rounding for the packed allocator (16-byte bins).
const NATIVE_GRANULE: u64 = 16;

/// The uninstrumented baseline: packed allocation, no protection.
pub struct NativeExecutor {
    machine: Arc<Machine>,
    threads: Vec<ThreadId>,
    objects: HashMap<ObjectTag, VirtAddr>,
    open_page: Option<(VirtAddr, u64)>,
    free_slots: HashMap<u64, Vec<VirtAddr>>,
    sizes: HashMap<ObjectTag, u64>,
}

impl NativeExecutor {
    /// A fresh baseline machine.
    #[must_use]
    pub fn new() -> NativeExecutor {
        NativeExecutor {
            machine: Arc::new(Machine::new(MachineConfig::default())),
            threads: Vec::new(),
            objects: HashMap::new(),
            open_page: None,
            free_slots: HashMap::new(),
            sizes: HashMap::new(),
        }
    }

    /// The machine, for metric collection.
    #[must_use]
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> VariantMetrics {
        metrics_of(&self.machine)
    }

    fn packed_alloc(&mut self, t: ThreadId, size: u64) -> VirtAddr {
        let rounded = size.max(1).div_ceil(NATIVE_GRANULE) * NATIVE_GRANULE;
        if rounded < PAGE_SIZE {
            // Small allocation: the glibc fast path cost. Large
            // allocations pay the mmap charged by `map_page` instead —
            // that *is* glibc's large-allocation path.
            let cost = self.machine.cost_model().malloc_baseline;
            self.machine.charge(t, cost);
        }
        if let Some(addr) = self.free_slots.get_mut(&rounded).and_then(Vec::pop) {
            return addr;
        }
        if rounded >= PAGE_SIZE {
            // Large allocation: contiguous fresh pages (glibc mmap path).
            let pages = rounded.div_ceil(PAGE_SIZE);
            let first = self.machine.reserve_pages(pages);
            for i in 0..pages {
                let frame = self.machine.alloc_frame(t);
                self.machine
                    .map_page(t, first.add(i), frame)
                    .expect("fresh page");
            }
            return first.base_addr();
        }
        // Small allocation: bump within the open page (packing many
        // objects per page — the behaviour Kard's allocator replaces).
        match self.open_page {
            Some((base, fill)) if fill + rounded <= PAGE_SIZE => {
                self.open_page = Some((base, fill + rounded));
                base.offset(fill)
            }
            _ => {
                let page = self.machine.reserve_pages(1);
                let frame = self.machine.alloc_frame(t);
                self.machine.map_page(t, page, frame).expect("fresh page");
                self.open_page = Some((page.base_addr(), rounded));
                page.base_addr()
            }
        }
    }

    fn thread(&self, index: usize) -> ThreadId {
        self.threads[index]
    }
}

impl Default for NativeExecutor {
    fn default() -> Self {
        NativeExecutor::new()
    }
}

impl Executor for NativeExecutor {
    fn start(&mut self, threads: usize) {
        while self.threads.len() < threads {
            self.threads.push(self.machine.register_thread());
        }
    }

    fn on_event(&mut self, thread: usize, op: &Op) {
        let t = self.thread(thread);
        let cost = *self.machine.cost_model();
        match *op {
            Op::Alloc { tag, size } | Op::Global { tag, size } => {
                let addr = self.packed_alloc(t, size);
                self.objects.insert(tag, addr);
                self.sizes.insert(tag, size);
            }
            Op::Free { tag } => {
                let addr = self.objects.remove(&tag).expect("free of unknown tag");
                let size = self.sizes.remove(&tag).expect("sized");
                let rounded = size.max(1).div_ceil(NATIVE_GRANULE) * NATIVE_GRANULE;
                if rounded < PAGE_SIZE {
                    self.free_slots.entry(rounded).or_default().push(addr);
                }
                self.machine.charge(t, cost.malloc_baseline / 2);
            }
            Op::Lock { .. } | Op::Unlock { .. } => {
                self.machine.charge(t, cost.lock_op);
            }
            Op::Read { tag, offset, ip } => {
                let addr = self.objects[&tag].offset(offset);
                self.machine
                    .access(t, addr, AccessKind::Read, ip)
                    .expect("baseline never faults");
            }
            Op::Write { tag, offset, ip } => {
                let addr = self.objects[&tag].offset(offset);
                self.machine
                    .access(t, addr, AccessKind::Write, ip)
                    .expect("baseline never faults");
            }
            Op::Compute { cycles } => self.machine.charge(t, cycles),
        }
    }
}

/// The "Alloc" configuration: Kard's allocator, no detection.
pub struct AllocOnlyExecutor {
    machine: Arc<Machine>,
    alloc: Arc<KardAlloc>,
    threads: Vec<ThreadId>,
    objects: HashMap<ObjectTag, ObjectInfo>,
}

impl AllocOnlyExecutor {
    /// A fresh machine with Kard's allocator mounted. Pins the sharded
    /// (demand-exact) path: the paper's "Alloc" configuration charges one
    /// `mmap` per allocation, which the magazine path batches away.
    #[must_use]
    pub fn new() -> AllocOnlyExecutor {
        let machine = Arc::new(Machine::new(MachineConfig::default()));
        let alloc = Arc::new(KardAlloc::sharded(Arc::clone(&machine)));
        AllocOnlyExecutor {
            machine,
            alloc,
            threads: Vec::new(),
            objects: HashMap::new(),
        }
    }

    /// The machine, for metric collection.
    #[must_use]
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> VariantMetrics {
        metrics_of(&self.machine)
    }

    fn thread(&self, index: usize) -> ThreadId {
        self.threads[index]
    }

    fn object(&self, tag: ObjectTag) -> ObjectId {
        self.objects[&tag].id
    }
}

impl Default for AllocOnlyExecutor {
    fn default() -> Self {
        AllocOnlyExecutor::new()
    }
}

impl Executor for AllocOnlyExecutor {
    fn start(&mut self, threads: usize) {
        while self.threads.len() < threads {
            self.threads.push(self.machine.register_thread());
        }
    }

    fn on_event(&mut self, thread: usize, op: &Op) {
        let t = self.thread(thread);
        let cost = *self.machine.cost_model();
        match *op {
            Op::Alloc { tag, size } => {
                let info = self.alloc.alloc(t, size);
                self.objects.insert(tag, info);
            }
            Op::Global { tag, size } => {
                let info = self.alloc.register_global(t, size);
                self.objects.insert(tag, info);
            }
            Op::Free { tag } => {
                let id = self.object(tag);
                self.objects.remove(&tag);
                self.alloc.free(t, id);
            }
            Op::Lock { .. } | Op::Unlock { .. } => {
                self.machine.charge(t, cost.lock_op);
            }
            Op::Read { tag, offset, ip } => {
                let addr = self.objects[&tag].base.offset(offset);
                self.machine
                    .access(t, addr, AccessKind::Read, ip)
                    .expect("alloc-only never protects, never faults");
            }
            Op::Write { tag, offset, ip } => {
                let addr = self.objects[&tag].base.offset(offset);
                self.machine
                    .access(t, addr, AccessKind::Write, ip)
                    .expect("alloc-only never protects, never faults");
            }
            Op::Compute { cycles } => self.machine.charge(t, cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kard_core::LockId;
    use kard_sim::CodeSite;
    use kard_trace::replay::replay;
    use kard_trace::schedule::sequential;
    use kard_trace::ThreadProgram;

    fn object_heavy_program(n: u64) -> ThreadProgram {
        let mut p = ThreadProgram::new();
        for i in 0..n {
            p.alloc(ObjectTag(i), 32);
        }
        // Sweep all objects repeatedly: dTLB working set = distinct pages.
        for round in 0..20 {
            for i in 0..n {
                p.read(ObjectTag(i), 0, CodeSite(round));
            }
        }
        p
    }

    #[test]
    fn packed_allocation_keeps_rss_small() {
        let mut native = NativeExecutor::new();
        replay(&sequential(&[object_heavy_program(256)]), &mut native);
        // 256 x 32 B objects pack into two pages.
        assert_eq!(native.metrics().peak_rss_bytes, 2 * PAGE_SIZE);
    }

    #[test]
    fn unique_pages_inflate_rss_but_not_phys() {
        let mut ao = AllocOnlyExecutor::new();
        replay(&sequential(&[object_heavy_program(256)]), &mut ao);
        let m = ao.metrics();
        assert_eq!(m.peak_rss_bytes, 256 * PAGE_SIZE, "one PTE per object");
        assert_eq!(m.peak_phys_bytes, 2 * PAGE_SIZE, "consolidated frames");
    }

    #[test]
    fn unique_pages_raise_dtlb_misses() {
        let mut native = NativeExecutor::new();
        let mut ao = AllocOnlyExecutor::new();
        // 256 objects sweep: 2 pages packed vs 256 pages unique (≫ 64-entry TLB).
        replay(&sequential(&[object_heavy_program(256)]), &mut native);
        replay(&sequential(&[object_heavy_program(256)]), &mut ao);
        let nm = native.metrics();
        let am = ao.metrics();
        assert!(nm.dtlb_miss_rate < 0.01, "packed sweep fits the TLB");
        assert!(am.dtlb_miss_rate > 0.5, "unique pages thrash the TLB");
        assert!(am.cycles > nm.cycles, "dTLB penalty shows up in cycles");
    }

    #[test]
    fn alloc_only_charges_mmap_per_allocation() {
        let mut ao = AllocOnlyExecutor::new();
        replay(&sequential(&[object_heavy_program(10)]), &mut ao);
        assert_eq!(ao.metrics().mmaps, 10);
        let mut native = NativeExecutor::new();
        replay(&sequential(&[object_heavy_program(10)]), &mut native);
        assert_eq!(native.metrics().mmaps, 1, "one packed page");
    }

    #[test]
    fn baseline_free_reuses_slots() {
        let mut p = ThreadProgram::new();
        for i in 0..100 {
            p.alloc(ObjectTag(i), 32);
            p.write(ObjectTag(i), 0, CodeSite(0));
            p.free(ObjectTag(i));
        }
        let mut native = NativeExecutor::new();
        replay(&sequential(&[p]), &mut native);
        assert_eq!(
            native.metrics().peak_rss_bytes,
            PAGE_SIZE,
            "churn reuses one slot"
        );
    }

    #[test]
    fn locks_and_compute_charge_cycles_without_faults() {
        let mut p = ThreadProgram::new();
        p.lock(LockId(1), CodeSite(1));
        p.compute(10_000);
        p.unlock(LockId(1));
        let mut native = NativeExecutor::new();
        replay(&sequential(&[p]), &mut native);
        let m = native.metrics();
        assert!(m.cycles >= 10_000 + 80);
        assert_eq!(m.faults, 0);
    }
}
