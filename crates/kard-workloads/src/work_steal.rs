//! Work-stealing deque and async task-pool traffic shapes.
//!
//! The storm generator ([`crate::storm`]) models connect/blast/disconnect
//! session traffic; this module adds the two scheduler-shaped traffics the
//! production-mode Pareto sweep needs so its curves are not just PARSEC
//! models:
//!
//! * **Work-stealing deques** ([`WorkStealConfig`]): every worker owns a
//!   deque of task objects protected by the deque's lock; owners pop
//!   locally while thieves steal from a victim's deque *under the victim's
//!   lock* — the Chase–Lev discipline flattened onto lock identities.
//!   Every task is only ever touched under its home deque's lock, so the
//!   shape is race-free by construction; steals make a worker's objects a
//!   cross-thread shared group, which is exactly the access pattern that
//!   churns key holders and the §5.4 assignment rules.
//! * **Async task pool** ([`TaskPoolConfig`]): tasks are spawned once by an
//!   injector thread, then each round a seeded hash migrates every task to
//!   some worker, which runs it under the *task's own* lock. Lock identity
//!   follows the task, not the thread (the async executor discipline), so
//!   the shape is race-free while keeping many object groups concurrently
//!   live across changing threads — key-pressure traffic, not fault-storm
//!   traffic.
//!
//! Both generators emit [`StormSession`]s, so everything that consumes
//! storms — the firehose tests and benches, `bench_production_mode`'s
//! sweep — drives these shapes through the same replay path, and racy
//! variants plant exactly [`StormSession::expected_races`] Figure 1a-style
//! inconsistent-lock pairs. [`TrafficShape`] is the registry harnesses
//! iterate to sweep every shape uniformly.

use crate::storm::{self, StormConfig, StormSession};
use kard_core::LockId;
use kard_sim::CodeSite;
use kard_trace::schedule::{interleave_round_robin, interleave_seeded};
use kard_trace::{ObjectTag, ThreadProgram};

/// SplitMix64 finalizer: the crate's standard deterministic hash (see
/// [`crate::synth`]) — scheduling decisions must be a pure function of the
/// config so generated traffic is reproducible.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Shape of a work-stealing deque run.
#[derive(Clone, Copy, Debug)]
pub struct WorkStealConfig {
    /// Number of generated sessions.
    pub sessions: usize,
    /// Workers (logical threads) per session; stealing needs ≥ 2.
    pub workers: usize,
    /// Task objects on each worker's deque.
    pub tasks_per_worker: usize,
    /// Execution rounds after the spawn burst (total bursts = rounds + 1).
    pub rounds: usize,
    /// Permille of task executions that are steals by the next worker
    /// (running under the victim's deque lock).
    pub steal_permille: u32,
    /// How many sessions plant one inconsistent-lock race in their spawn
    /// burst (a result cell written under the owner's deque lock and read
    /// under the thief's — Figure 1a with scheduler roles).
    pub racy_sessions: usize,
    /// Seed for scheduling decisions and steady-state interleavings.
    pub seed: u64,
}

impl Default for WorkStealConfig {
    fn default() -> Self {
        WorkStealConfig {
            sessions: 4,
            workers: 3,
            tasks_per_worker: 4,
            rounds: 3,
            steal_permille: 300,
            racy_sessions: 0,
            seed: 1,
        }
    }
}

/// Generate work-stealing session `index`.
///
/// # Panics
///
/// Panics if `workers < 2` or `tasks_per_worker`/`rounds` is zero.
#[must_use]
pub fn steal_session(cfg: &WorkStealConfig, index: usize) -> StormSession {
    assert!(cfg.workers >= 2, "stealing needs at least two workers");
    assert!(cfg.tasks_per_worker > 0, "tasks_per_worker must be > 0");
    assert!(cfg.rounds > 0, "at least one execution round");
    let racy = index < cfg.racy_sessions;
    let task_tag = |w: usize, i: usize| ObjectTag((w * cfg.tasks_per_worker + i) as u64);
    let result_tag = ObjectTag((cfg.workers * cfg.tasks_per_worker) as u64);
    let deque_lock = |w: usize| LockId(1 + w as u64);

    let mut bursts = Vec::with_capacity(cfg.rounds + 1);
    // Spawn burst: every worker fills its own deque (task initialization
    // under the deque lock), plus the planted inconsistent-lock pair.
    let mut programs: Vec<ThreadProgram> = vec![ThreadProgram::new(); cfg.workers];
    for (w, p) in programs.iter_mut().enumerate() {
        for i in 0..cfg.tasks_per_worker {
            p.alloc(task_tag(w, i), 64);
        }
        p.critical_section(deque_lock(w), CodeSite(0x3000 + w as u64), |p| {
            for i in 0..cfg.tasks_per_worker {
                p.write(task_tag(w, i), 0, CodeSite(0x3100 + w as u64));
            }
        });
    }
    if racy {
        programs[0].alloc(result_tag, 64);
        programs[0].critical_section(deque_lock(0), CodeSite(0xaaa0), |p| {
            p.write(result_tag, 0, CodeSite(0xaaa1));
        });
        programs[1].critical_section(deque_lock(1), CodeSite(0xbbb0), |p| {
            p.read(result_tag, 0, CodeSite(0xbbb1));
            p.read(result_tag, 0, CodeSite(0xbbb2));
        });
    }
    bursts.push(interleave_round_robin(&programs).events().to_vec());

    for round in 1..=cfg.rounds {
        let mut programs: Vec<ThreadProgram> = vec![ThreadProgram::new(); cfg.workers];
        for w in 0..cfg.workers {
            for i in 0..cfg.tasks_per_worker {
                let h = mix(
                    cfg.seed ^ mix((index as u64) << 40 | (round as u64) << 20 | (w * cfg.tasks_per_worker + i) as u64),
                );
                let stolen = h % 1000 < u64::from(cfg.steal_permille);
                // A steal runs on the next worker but still under the
                // *victim's* deque lock — lock usage stays consistent per
                // task, which is what keeps the shape race-free.
                let runner = if stolen { (w + 1) % cfg.workers } else { w };
                programs[runner].critical_section(
                    deque_lock(w),
                    CodeSite(0x3000 + w as u64),
                    |p| {
                        p.read(task_tag(w, i), 0, CodeSite(0x3200 + runner as u64));
                        p.write(task_tag(w, i), 8, CodeSite(0x3300 + runner as u64));
                    },
                );
            }
        }
        bursts.push(
            interleave_seeded(
                &programs,
                cfg.seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((index * 4096 + round) as u64),
            )
            .events()
            .to_vec(),
        );
    }

    StormSession {
        name: format!("steal-{index}"),
        bursts,
        expected_races: usize::from(racy),
    }
}

/// Generate every session of a work-stealing run.
#[must_use]
pub fn steal_sessions(cfg: &WorkStealConfig) -> Vec<StormSession> {
    (0..cfg.sessions).map(|i| steal_session(cfg, i)).collect()
}

/// Shape of an async task-pool run.
#[derive(Clone, Copy, Debug)]
pub struct TaskPoolConfig {
    /// Number of generated sessions.
    pub sessions: usize,
    /// Workers (logical threads) per session, excluding none — thread 0
    /// doubles as the injector.
    pub workers: usize,
    /// Tasks in the pool.
    pub tasks: usize,
    /// Execution rounds after the spawn burst; each round every task runs
    /// on a seeded-hash-chosen worker.
    pub rounds: usize,
    /// How many sessions plant one inconsistent-lock race (a completion
    /// counter bumped under two different workers' local locks).
    pub racy_sessions: usize,
    /// Seed for task placement and steady-state interleavings.
    pub seed: u64,
}

impl Default for TaskPoolConfig {
    fn default() -> Self {
        TaskPoolConfig {
            sessions: 4,
            workers: 3,
            tasks: 8,
            rounds: 3,
            racy_sessions: 0,
            seed: 1,
        }
    }
}

/// Generate async task-pool session `index`.
///
/// # Panics
///
/// Panics if `workers < 2` or `tasks`/`rounds` is zero.
#[must_use]
pub fn pool_session(cfg: &TaskPoolConfig, index: usize) -> StormSession {
    assert!(cfg.workers >= 2, "a pool needs at least two workers");
    assert!(cfg.tasks > 0, "tasks must be > 0");
    assert!(cfg.rounds > 0, "at least one execution round");
    let racy = index < cfg.racy_sessions;
    let task_tag = |i: usize| ObjectTag(i as u64);
    let counter_tag = ObjectTag(cfg.tasks as u64);
    let injector_lock = LockId(1);
    let task_lock = |i: usize| LockId(100 + i as u64);
    let worker_lock = |w: usize| LockId(1000 + w as u64);

    let mut bursts = Vec::with_capacity(cfg.rounds + 1);
    // Spawn burst: the injector (thread 0) allocates every task, touches
    // its queue bookkeeping under the injector lock, and initializes each
    // task under the *task's* lock — the lock that will follow the task
    // across workers. Initializing under the injector lock instead would
    // be inconsistent lock usage, which Kard rightly reports.
    let mut programs: Vec<ThreadProgram> = vec![ThreadProgram::new(); cfg.workers];
    // The planted pair leads both programs so the round-robin interleave
    // puts the counter allocation before worker 1's first read and
    // overlaps the two inconsistent sections.
    if racy {
        programs[0].alloc(counter_tag, 64);
        programs[0].critical_section(worker_lock(0), CodeSite(0xcaa0), |p| {
            p.write(counter_tag, 0, CodeSite(0xcaa1));
        });
        programs[1].critical_section(worker_lock(1), CodeSite(0xcbb0), |p| {
            p.read(counter_tag, 0, CodeSite(0xcbb1));
            p.read(counter_tag, 0, CodeSite(0xcbb2));
        });
    }
    let queue_tag = ObjectTag((cfg.tasks + 1) as u64);
    programs[0].alloc(queue_tag, 64);
    for i in 0..cfg.tasks {
        programs[0].alloc(task_tag(i), 64);
    }
    programs[0].critical_section(injector_lock, CodeSite(0x4000), |p| {
        p.write(queue_tag, 0, CodeSite(0x4001));
    });
    for i in 0..cfg.tasks {
        programs[0].critical_section(task_lock(i), CodeSite(0x4100 + i as u64), |p| {
            p.write(task_tag(i), 0, CodeSite(0x4002));
        });
    }
    bursts.push(interleave_round_robin(&programs).events().to_vec());

    // Execution rounds: each task migrates to a hash-chosen worker and
    // runs under its *own* lock — the async-executor discipline where
    // lock identity follows the future, not the thread.
    for round in 1..=cfg.rounds {
        let mut programs: Vec<ThreadProgram> = vec![ThreadProgram::new(); cfg.workers];
        for i in 0..cfg.tasks {
            let runner = (mix(cfg.seed ^ mix((index as u64) << 40 | (round as u64) << 20 | i as u64))
                % cfg.workers as u64) as usize;
            programs[runner].critical_section(
                task_lock(i),
                CodeSite(0x4100 + i as u64),
                |p| {
                    p.read(task_tag(i), 0, CodeSite(0x4200 + runner as u64));
                    p.write(task_tag(i), 8, CodeSite(0x4300 + runner as u64));
                },
            );
        }
        bursts.push(
            interleave_seeded(
                &programs,
                cfg.seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((index * 8192 + round) as u64),
            )
            .events()
            .to_vec(),
        );
    }

    StormSession {
        name: format!("pool-{index}"),
        bursts,
        expected_races: usize::from(racy),
    }
}

/// Generate every session of an async task-pool run.
#[must_use]
pub fn pool_sessions(cfg: &TaskPoolConfig) -> Vec<StormSession> {
    (0..cfg.sessions).map(|i| pool_session(cfg, i)).collect()
}

/// Registry of the burst-traffic generators, so sweeps (firehose benches,
/// the production-mode Pareto harness) can iterate every shape through one
/// interface instead of hard-coding the storm generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficShape {
    /// Connect/blast/disconnect storms ([`crate::storm`]).
    Storm,
    /// Work-stealing deques ([`WorkStealConfig`]).
    WorkSteal,
    /// Async task pool ([`TaskPoolConfig`]).
    TaskPool,
}

impl TrafficShape {
    /// Every registered shape.
    pub const ALL: [TrafficShape; 3] =
        [TrafficShape::Storm, TrafficShape::WorkSteal, TrafficShape::TaskPool];

    /// Stable name, used in bench JSON rows and session prefixes.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrafficShape::Storm => "storm",
            TrafficShape::WorkSteal => "work_steal",
            TrafficShape::TaskPool => "task_pool",
        }
    }

    /// Generate `sessions` sessions of this shape at its default scale,
    /// the first `racy` of them carrying one planted race each.
    #[must_use]
    pub fn sessions(self, sessions: usize, racy: usize, seed: u64) -> Vec<StormSession> {
        match self {
            TrafficShape::Storm => storm::sessions(&StormConfig {
                sessions,
                racy_sessions: racy,
                seed,
                ..StormConfig::default()
            }),
            TrafficShape::WorkSteal => steal_sessions(&WorkStealConfig {
                sessions,
                racy_sessions: racy,
                seed,
                ..WorkStealConfig::default()
            }),
            TrafficShape::TaskPool => pool_sessions(&TaskPoolConfig {
                sessions,
                racy_sessions: racy,
                seed,
                ..TaskPoolConfig::default()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kard_rt::{KardExecutor, Session};
    use kard_trace::Op;

    fn replay_session(s: &StormSession) -> usize {
        let session = Session::new();
        let mut exec = KardExecutor::new(session.kard().clone());
        use kard_trace::replay::Executor as _;
        exec.start(
            s.bursts
                .iter()
                .flatten()
                .map(|e| e.thread + 1)
                .max()
                .unwrap_or(1),
        );
        for burst in &s.bursts {
            for e in burst {
                exec.on_event(e.thread, &e.op);
            }
        }
        exec.reports().len()
    }

    #[test]
    fn consistent_steal_sessions_are_race_free() {
        for s in steal_sessions(&WorkStealConfig::default()) {
            assert_eq!(s.expected_races, 0);
            assert_eq!(replay_session(&s), 0, "{} reported a race", s.name);
        }
    }

    #[test]
    fn racy_steal_sessions_report_exactly_one_race() {
        let cfg = WorkStealConfig { racy_sessions: 2, ..WorkStealConfig::default() };
        let all = steal_sessions(&cfg);
        for s in &all[..2] {
            assert_eq!(s.expected_races, 1);
            assert_eq!(replay_session(s), 1, "{} missed its race", s.name);
        }
        for s in &all[2..] {
            assert_eq!(replay_session(s), 0);
        }
    }

    #[test]
    fn steals_cross_threads() {
        let cfg = WorkStealConfig { steal_permille: 500, ..WorkStealConfig::default() };
        let s = steal_session(&cfg, 0);
        let tasks_per = cfg.tasks_per_worker;
        let mut steals = 0usize;
        for burst in &s.bursts[1..] {
            for e in burst {
                if let Op::Write { tag, .. } = e.op {
                    let home = tag.0 as usize / tasks_per;
                    if home < cfg.workers && home != e.thread {
                        steals += 1;
                    }
                }
            }
        }
        assert!(steals > 0, "a 500-permille steal ratio must steal sometimes");
    }

    #[test]
    fn consistent_pool_sessions_are_race_free() {
        for s in pool_sessions(&TaskPoolConfig::default()) {
            assert_eq!(s.expected_races, 0);
            assert_eq!(replay_session(&s), 0, "{} reported a race", s.name);
        }
    }

    #[test]
    fn racy_pool_sessions_report_exactly_one_race() {
        let cfg = TaskPoolConfig { racy_sessions: 1, ..TaskPoolConfig::default() };
        let all = pool_sessions(&cfg);
        assert_eq!(all[0].expected_races, 1);
        assert_eq!(replay_session(&all[0]), 1, "{} missed its race", all[0].name);
        assert_eq!(replay_session(&all[1]), 0);
    }

    #[test]
    fn pool_tasks_migrate_across_workers() {
        let cfg = TaskPoolConfig { rounds: 6, ..TaskPoolConfig::default() };
        let s = pool_session(&cfg, 0);
        let mut migrated = false;
        for task in 0..cfg.tasks {
            let mut runners: Vec<usize> = Vec::new();
            for burst in &s.bursts[1..] {
                for e in burst {
                    if let Op::Write { tag, .. } = e.op {
                        if tag.0 as usize == task {
                            runners.push(e.thread);
                        }
                    }
                }
            }
            runners.dedup();
            if runners.len() > 1 {
                migrated = true;
            }
        }
        assert!(migrated, "tasks should run on more than one worker over rounds");
    }

    #[test]
    fn generation_is_deterministic() {
        for shape in TrafficShape::ALL {
            let a = shape.sessions(3, 1, 7);
            let b = shape.sessions(3, 1, 7);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.bursts, y.bursts);
                assert_eq!(x.expected_races, y.expected_races);
            }
        }
    }

    #[test]
    fn registry_names_and_prefixes_line_up() {
        for shape in TrafficShape::ALL {
            let sessions = shape.sessions(2, 1, 3);
            assert_eq!(sessions.len(), 2);
            assert_eq!(sessions[0].expected_races, 1);
            for s in &sessions {
                assert!(s.total_events() > 0);
            }
        }
        assert_eq!(TrafficShape::WorkSteal.name(), "work_steal");
    }
}
