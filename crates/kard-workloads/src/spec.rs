//! Workload specifications: the paper's measured execution statistics.

use serde::{Deserialize, Serialize};

/// Which benchmark suite a workload belongs to (Table 3 groups).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// PARSEC 3.0.
    Parsec,
    /// SPLASH-2x.
    Splash2x,
    /// Real-world application (NGINX, memcached, pigz, Aget).
    RealWorld,
}

/// Paper-reported results for one workload (Table 3's output columns),
/// kept for EXPERIMENTS.md's paper-vs-measured comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PaperResults {
    /// "Alloc" execution-time overhead (%).
    pub alloc_pct: f64,
    /// Kard execution-time overhead (%).
    pub kard_pct: f64,
    /// TSan execution-time overhead (%).
    pub tsan_pct: f64,
    /// Kard peak-memory overhead (%).
    pub kard_mem_pct: f64,
    /// Alloc dTLB miss-rate increase (%).
    pub dtlb_alloc_pct: f64,
    /// Kard dTLB miss-rate increase (%).
    pub dtlb_kard_pct: f64,
}

/// One workload's model parameters.
///
/// The *input* fields (objects, sections, entries, baseline time/memory)
/// come straight from Table 3; the synthetic generator reproduces them at
/// a configurable scale. The *model* fields control access patterns that
/// Table 3 does not pin down (touches per entry); defaults are uniform and
/// per-workload overrides are documented where the paper motivates them.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name as printed in Table 3.
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// Sharable heap objects allocated.
    pub heap_objects: u64,
    /// Sharable global objects.
    pub global_objects: u64,
    /// Shared objects that end in the Read-only domain.
    pub shared_ro: u64,
    /// Shared objects that end in the Read-write domain.
    pub shared_rw: u64,
    /// Distinct critical sections in the program.
    pub total_sections: u64,
    /// Maximum concurrently active critical sections.
    pub active_sections: u64,
    /// Total critical-section entries (4-thread run).
    pub cs_entries: u64,
    /// Baseline execution time in seconds (4 threads, paper's machine).
    pub baseline_secs: f64,
    /// Baseline peak RSS in bytes (Table 3 column, reported in KiB there).
    pub baseline_rss_bytes: u64,
    /// Baseline dTLB miss rate.
    pub baseline_dtlb_miss: f64,
    /// Average heap-object size in bytes (paper gives it for some
    /// workloads, e.g. 24 B for water_nsquared; others default to 32 B).
    pub avg_object_size: u64,
    /// Shared read-only objects touched per critical-section entry.
    pub ro_touches_per_entry: u64,
    /// Shared read-write objects touched per critical-section entry.
    pub rw_touches_per_entry: u64,
    /// Private (non-shared) objects touched outside critical sections per
    /// entry — drives baseline memory traffic and dTLB pressure.
    pub private_touches_per_entry: u64,
    /// Fraction of the persistent heap population resident (first-touched)
    /// at peak. Most workloads touch everything they allocate (1.0); NGINX
    /// keeps only its active connection state resident while the remaining
    /// allocations are transient.
    pub resident_fraction: f64,
    /// Short-lived heap objects allocated, touched, and freed per entry
    /// (request/connection churn). `heap_objects` counts *total*
    /// allocations, so churned allocations are subtracted from the
    /// persistent population. NGINX is the churn-dominated workload.
    pub churn_per_entry: u64,
    /// Paper-reported results for comparison.
    pub paper: PaperResults,
}

impl WorkloadSpec {
    /// Total sharable objects (heap + globals), the `pkey_mprotect` driver.
    #[must_use]
    pub fn sharable_objects(&self) -> u64 {
        self.heap_objects + self.global_objects
    }

    /// Total shared objects (Table 3 "Shared objects" = RO + RW).
    #[must_use]
    pub fn shared_objects(&self) -> u64 {
        self.shared_ro + self.shared_rw
    }

    /// Baseline execution time converted to cycles on the paper's 2.1 GHz
    /// machine.
    #[must_use]
    pub fn baseline_cycles(&self) -> u64 {
        kard_sim::CostModel::seconds_to_cycles(self.baseline_secs)
    }
}

/// Geometric mean of a set of percentage overheads, computed the way the
/// paper does (over ratios `1 + pct/100`, tolerating small negatives).
#[must_use]
pub fn geomean_pct(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|pct| (1.0 + pct / 100.0).max(1e-9).ln())
        .sum();
    ((log_sum / values.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table3;

    #[test]
    fn geomean_matches_paper_for_kard_column() {
        // Sanity-check the geomean definition against the paper's own
        // numbers: the 15 benchmark Kard overheads must combine to ~7.0%.
        let kard: Vec<f64> = table3::benchmarks()
            .iter()
            .map(|s| s.paper.kard_pct)
            .collect();
        let g = geomean_pct(&kard);
        assert!(
            (g - 7.0).abs() < 0.5,
            "paper reports 7.0% geomean, definition gives {g:.2}%"
        );
    }

    #[test]
    fn geomean_of_real_world_kard_column() {
        let kard: Vec<f64> = table3::real_world()
            .iter()
            .map(|s| s.paper.kard_pct)
            .collect();
        let g = geomean_pct(&kard);
        assert!((g - 5.3).abs() < 0.5, "paper reports 5.3%, got {g:.2}%");
    }

    #[test]
    fn geomean_handles_empty_and_identity() {
        assert_eq!(geomean_pct(&[]), 0.0);
        assert!((geomean_pct(&[10.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn derived_quantities() {
        let s = table3::by_name("streamcluster").unwrap();
        assert_eq!(s.sharable_objects(), 1838);
        assert_eq!(s.shared_objects(), 1);
        assert_eq!(s.baseline_cycles(), (4.96 * 2.1e9) as u64);
    }
}
