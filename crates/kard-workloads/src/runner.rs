//! Run one workload under the four Table 3 configurations and report
//! overheads: Baseline, Alloc, Kard, and the TSan cost model.

use crate::native::{metrics_of, AllocOnlyExecutor, NativeExecutor, VariantMetrics};
use crate::spec::WorkloadSpec;
use crate::synth::{build_programs, shape, SynthConfig, SynthShape};
use kard_baselines::cost::tsan_overhead_pct_with_compute;
use kard_core::DetectorStats;
use kard_core::KardConfig;
use kard_rt::{KardExecutor, Session};
use kard_sim::{CostModel, MachineConfig};
use kard_trace::replay::replay;

/// Re-export for harness convenience.
pub use crate::native::VariantMetrics as VariantResult;

/// The outcome of one workload comparison.
#[derive(Clone, Debug)]
pub struct ComparisonResult {
    /// The workload that ran.
    pub spec: WorkloadSpec,
    /// Threads used.
    pub threads: usize,
    /// Scale factor used.
    pub scale: f64,
    /// What the generator actually produced.
    pub shape: SynthShape,
    /// Uninstrumented baseline metrics.
    pub baseline: VariantMetrics,
    /// Kard-allocator-only metrics (the "Alloc" column).
    pub alloc_only: VariantMetrics,
    /// Full-Kard metrics.
    pub kard: VariantMetrics,
    /// Detector statistics from the Kard run.
    pub kard_stats: DetectorStats,
    /// Races Kard reported (must be 0 for benchmark workloads).
    pub kard_races: usize,
    /// Modelled TSan overhead (%), from the per-access cost model.
    pub tsan_pct: f64,
}

impl ComparisonResult {
    fn overhead(base: u64, variant: u64) -> f64 {
        if base == 0 {
            0.0
        } else {
            100.0 * (variant as f64 - base as f64) / base as f64
        }
    }

    /// "Alloc" execution-time overhead (%).
    #[must_use]
    pub fn alloc_pct(&self) -> f64 {
        Self::overhead(self.baseline.cycles, self.alloc_only.cycles)
    }

    /// Kard execution-time overhead (%).
    #[must_use]
    pub fn kard_pct(&self) -> f64 {
        Self::overhead(self.baseline.cycles, self.kard.cycles)
    }

    /// Fixed RSS of Kard's runtime itself (fault handler, maps, logs —
    /// the paper's implementation uses standard C++ containers, §7.5).
    pub const RUNTIME_FOOTPRINT_BYTES: u64 = 2 << 20;
    /// Per-live-object metadata (base/size records, domain and key-map
    /// entries).
    pub const METADATA_PER_OBJECT: u64 = 24;

    /// Kard peak-memory overhead (%), extrapolated to full scale against
    /// the paper's measured baseline RSS: the simulated baseline lacks
    /// program text and stacks, so the page *delta* is measured here,
    /// runtime metadata is added analytically, and the denominator comes
    /// from Table 3.
    #[must_use]
    pub fn kard_mem_pct(&self) -> f64 {
        let delta = self.kard.peak_rss_bytes.saturating_sub(self.baseline.peak_rss_bytes);
        let live_full_scale =
            (self.shape.heap_objects + self.shape.global_objects) as f64 / self.scale;
        let full_scale_delta = delta as f64 / self.scale
            + Self::RUNTIME_FOOTPRINT_BYTES as f64
            + live_full_scale * Self::METADATA_PER_OBJECT as f64;
        100.0 * full_scale_delta / self.spec.baseline_rss_bytes as f64
    }

    /// Relative dTLB miss-rate increase of the Alloc configuration (%).
    #[must_use]
    pub fn dtlb_alloc_pct(&self) -> f64 {
        relative_rate(self.baseline.dtlb_miss_rate, self.alloc_only.dtlb_miss_rate)
    }

    /// Relative dTLB miss-rate increase of Kard (%).
    #[must_use]
    pub fn dtlb_kard_pct(&self) -> f64 {
        relative_rate(self.baseline.dtlb_miss_rate, self.kard.dtlb_miss_rate)
    }
}

fn relative_rate(base: f64, variant: f64) -> f64 {
    if base <= 0.0 {
        if variant <= 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (variant - base) / base
    }
}

/// Run `spec` at `cfg` under all configurations with a seeded schedule
/// and default machine/detector configuration.
#[must_use]
pub fn run_workload(spec: &WorkloadSpec, cfg: &SynthConfig, seed: u64) -> ComparisonResult {
    run_workload_configured(
        spec,
        cfg,
        seed,
        MachineConfig::default(),
        KardConfig::default(),
    )
}

/// Run `spec` with explicit machine and detector configuration — the
/// ablation entry point (key counts, interleaving/proactive switches,
/// exhaustion policy).
#[must_use]
pub fn run_workload_configured(
    spec: &WorkloadSpec,
    cfg: &SynthConfig,
    seed: u64,
    machine_config: MachineConfig,
    kard_config: KardConfig,
) -> ComparisonResult {
    let phased = build_programs(spec, cfg);
    let trace = phased.trace_seeded(seed);
    let sh = shape(spec, cfg);

    let mut native = NativeExecutor::new();
    replay(&trace, &mut native);
    let baseline = native.metrics();

    let mut alloc_only = AllocOnlyExecutor::new();
    replay(&trace, &mut alloc_only);
    let alloc_metrics = alloc_only.metrics();

    let session = Session::builder().machine(machine_config).config(kard_config).build();
    let mut kard_exec = KardExecutor::new(session.kard().clone());
    replay(&trace, &mut kard_exec);
    let kard_metrics = metrics_of(session.machine());

    let tsan_pct = tsan_overhead_pct_with_compute(
        &CostModel::paper(),
        trace.access_count(),
        trace.compute_cycles(),
        baseline.cycles,
    );

    ComparisonResult {
        spec: *spec,
        threads: cfg.threads,
        scale: cfg.scale,
        shape: sh,
        baseline,
        alloc_only: alloc_metrics,
        kard: kard_metrics,
        kard_stats: kard_exec.stats(),
        kard_races: kard_exec.reports().len(),
        tsan_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table3;

    fn run(name: &str, scale: f64) -> ComparisonResult {
        let spec = table3::by_name(name).unwrap();
        run_workload(
            &spec,
            &SynthConfig {
                threads: 4,
                scale,
            },
            42,
        )
    }

    #[test]
    fn benchmarks_report_no_races() {
        for name in ["streamcluster", "fluidanimate", "water_nsquared", "barnes"] {
            let r = run(name, 2e-3);
            assert_eq!(r.kard_races, 0, "{name} must be race-free");
        }
    }

    #[test]
    fn kard_overhead_exceeds_alloc_overhead() {
        let r = run("fluidanimate", 2e-3);
        assert!(
            r.kard_pct() >= r.alloc_pct(),
            "detection adds cost on top of allocation: kard={:.1}% alloc={:.1}%",
            r.kard_pct(),
            r.alloc_pct()
        );
    }

    #[test]
    fn cs_entry_heavy_workloads_cost_more() {
        // The paper's central performance claim (§7.2): fluidanimate
        // (4.4M entries / 3.25s) overhead ≫ streamcluster (116k / 5s).
        let fluid = run("fluidanimate", 2e-3);
        let stream = run("streamcluster", 2e-3);
        assert!(
            fluid.kard_pct() > 3.0 * stream.kard_pct().max(0.1),
            "fluidanimate {:.1}% vs streamcluster {:.1}%",
            fluid.kard_pct(),
            stream.kard_pct()
        );
    }

    #[test]
    fn tsan_model_is_orders_of_magnitude_worse() {
        let r = run("barnes", 2e-3);
        assert!(
            r.tsan_pct > 10.0 * r.kard_pct().max(1.0) && r.tsan_pct > 200.0,
            "tsan={:.0}% kard={:.1}%",
            r.tsan_pct,
            r.kard_pct()
        );
    }

    #[test]
    fn object_heavy_workload_has_large_memory_overhead() {
        // water_nsquared's 128k unique pages vs 12 MiB baseline RSS.
        let water = run("water_nsquared", 2e-3);
        let radix = run("radix", 0.5);
        assert!(
            water.kard_mem_pct() > 500.0,
            "water_nsquared mem overhead {:.0}%",
            water.kard_mem_pct()
        );
        assert!(
            radix.kard_mem_pct() < 20.0,
            "radix mem overhead {:.1}%",
            radix.kard_mem_pct()
        );
    }

    #[test]
    fn dtlb_pressure_shows_for_object_heavy_workloads() {
        let water = run("water_nsquared", 2e-3);
        assert!(
            water.dtlb_kard_pct() > water.dtlb_alloc_pct().max(0.0) * 0.5
                && water.kard.dtlb_miss_rate > water.baseline.dtlb_miss_rate,
            "unique pages must raise the miss rate: base={:.5} kard={:.5}",
            water.baseline.dtlb_miss_rate,
            water.kard.dtlb_miss_rate
        );
    }

    #[test]
    fn stats_reflect_shape() {
        let r = run("memcached", 5e-3);
        assert_eq!(r.kard_stats.cs_entries, r.shape.cs_entries);
        assert!(r.kard_stats.unique_sections <= r.spec.total_sections);
        assert!(r.kard_stats.objects_identified > 0);
    }
}
