//! Interleaving strategies: turn per-thread programs into a total order.

use crate::event::{Event, Op};
use crate::program::ThreadProgram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A totally ordered, replayable schedule of events.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    events: Vec<Event>,
    threads: usize,
}

impl Trace {
    /// Build a trace directly from scheduled events.
    ///
    /// # Panics
    ///
    /// Panics if an event references a thread index ≥ `threads`.
    #[must_use]
    pub fn from_events(threads: usize, events: Vec<Event>) -> Trace {
        assert!(
            events.iter().all(|e| e.thread < threads),
            "event thread index out of range"
        );
        Trace { events, threads }
    }

    /// The scheduled events in order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of logical threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Number of data accesses (reads + writes) in the trace.
    #[must_use]
    pub fn access_count(&self) -> u64 {
        self.events.iter().filter(|e| e.op.is_access()).count() as u64
    }

    /// Total cycles of `Compute` padding in the trace.
    #[must_use]
    pub fn compute_cycles(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.op {
                Op::Compute { cycles } => cycles,
                _ => 0,
            })
            .sum()
    }

    /// Number of critical-section entries in the trace.
    #[must_use]
    pub fn cs_entry_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.op, Op::Lock { .. }))
            .count() as u64
    }

    /// Serialize the schedule to JSON — the on-disk format for sharing a
    /// reproducing schedule alongside a bug report.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (none occur for well-formed traces).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Load a schedule previously saved with [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error when the JSON is malformed or an event references
    /// a thread index out of range.
    pub fn from_json(json: &str) -> Result<Trace, serde_json::Error> {
        let trace: Trace = serde_json::from_str(json)?;
        if trace.events.iter().any(|e| e.thread >= trace.threads) {
            return Err(serde_json::Error::custom(
                "event thread index out of range",
            ));
        }
        Ok(trace)
    }

    /// Concatenate another trace's events after this one (same thread
    /// universe).
    #[must_use]
    pub fn then(mut self, other: Trace) -> Trace {
        self.threads = self.threads.max(other.threads);
        self.events.extend(other.events);
        self
    }
}

/// A program with an initialization phase: `init` runs to completion on
/// thread 0 (program startup: registering globals, allocating shared
/// state) before the per-thread `threads` programs run concurrently —
/// modelling the spawn ordering every real program has.
#[derive(Clone, Debug, Default)]
pub struct PhasedProgram {
    /// Startup operations, executed first, attributed to thread 0.
    pub init: ThreadProgram,
    /// Steady-state per-thread programs (index = logical thread).
    pub threads: Vec<ThreadProgram>,
}

impl PhasedProgram {
    /// Schedule with a round-robin steady state.
    #[must_use]
    pub fn trace_round_robin(&self) -> Trace {
        self.trace_with(interleave_round_robin(&self.threads))
    }

    /// Schedule with a seeded-random steady state.
    #[must_use]
    pub fn trace_seeded(&self, seed: u64) -> Trace {
        self.trace_with(interleave_seeded(&self.threads, seed))
    }

    fn trace_with(&self, steady: Trace) -> Trace {
        let threads = self.threads.len().max(1);
        let mut events: Vec<Event> = self
            .init
            .ops()
            .iter()
            .map(|&op| Event { thread: 0, op })
            .collect();
        events.extend_from_slice(steady.events());
        Trace::from_events(threads, events)
    }
}

/// Run the programs one after another (no concurrency at all): the
/// teaching/baseline schedule.
#[must_use]
pub fn sequential(programs: &[ThreadProgram]) -> Trace {
    let mut events = Vec::new();
    for (thread, program) in programs.iter().enumerate() {
        events.extend(program.ops().iter().map(|&op| Event { thread, op }));
    }
    Trace::from_events(programs.len(), events)
}

/// Interleave programs one operation at a time, round-robin. Lock-protected
/// regions are *not* kept atomic: the round-robin schedule deliberately
/// overlaps critical sections of different locks, the schedule shape ILU
/// needs. Regions under the *same* lock are kept mutually exclusive (a
/// thread whose next op is `Lock` on a lock that another scheduled thread
/// currently holds is skipped until the lock frees), preserving lock
/// semantics.
#[must_use]
pub fn interleave_round_robin(programs: &[ThreadProgram]) -> Trace {
    interleave_with(programs, |_len, step| step)
}

/// Interleave programs by repeatedly picking a random runnable thread,
/// seeded for reproducibility.
#[must_use]
pub fn interleave_seeded(programs: &[ThreadProgram], seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    interleave_with(programs, move |len, _| rng.gen_range(0..len))
}

/// Core interleaver: `pick(runnable_count)` chooses among runnable threads.
fn interleave_with(
    programs: &[ThreadProgram],
    mut pick: impl FnMut(usize, usize) -> usize,
) -> Trace {
    let mut cursors = vec![0usize; programs.len()];
    let mut held_locks: Vec<(kard_core::LockId, usize)> = Vec::new();
    let mut events = Vec::new();
    let mut step = 0usize;

    loop {
        // A thread is runnable if it has ops left and its next op is not a
        // Lock on a lock held by a *different* thread.
        let runnable: Vec<usize> = (0..programs.len())
            .filter(|&t| {
                let ops = programs[t].ops();
                match ops.get(cursors[t]) {
                    None => false,
                    Some(Op::Lock { lock, .. }) => held_locks
                        .iter()
                        .all(|&(held, owner)| held != *lock || owner == t),
                    Some(_) => true,
                }
            })
            .collect();
        if runnable.is_empty() {
            let exhausted = cursors
                .iter()
                .zip(programs)
                .all(|(&c, p)| c == p.ops().len());
            assert!(exhausted, "schedule deadlocked: all runnable threads blocked");
            break;
        }
        let t = runnable[pick(runnable.len(), step) % runnable.len()];
        step += 1;
        let op = programs[t].ops()[cursors[t]];
        cursors[t] += 1;
        match op {
            Op::Lock { lock, .. } => held_locks.push((lock, t)),
            Op::Unlock { lock } => {
                let pos = held_locks
                    .iter()
                    .rposition(|&(held, owner)| held == lock && owner == t)
                    .expect("unlock of lock not held in schedule");
                held_locks.remove(pos);
            }
            _ => {}
        }
        events.push(Event { thread: t, op });
    }
    Trace::from_events(programs.len(), events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObjectTag;
    use kard_core::LockId;
    use kard_sim::CodeSite;

    fn two_writers(lock_a: u64, lock_b: u64) -> Vec<ThreadProgram> {
        let mut p0 = ThreadProgram::new();
        p0.alloc(ObjectTag(0), 32);
        p0.critical_section(LockId(lock_a), CodeSite(0xa), |p| {
            p.write(ObjectTag(0), 0, CodeSite(0xa1));
        });
        let mut p1 = ThreadProgram::new();
        p1.critical_section(LockId(lock_b), CodeSite(0xb), |p| {
            p.write(ObjectTag(0), 0, CodeSite(0xb1));
        });
        vec![p0, p1]
    }

    #[test]
    fn sequential_preserves_program_order() {
        let trace = sequential(&two_writers(1, 2));
        let threads: Vec<_> = trace.events().iter().map(|e| e.thread).collect();
        assert_eq!(threads, vec![0, 0, 0, 0, 1, 1, 1]);
        assert_eq!(trace.access_count(), 2);
        assert_eq!(trace.cs_entry_count(), 2);
    }

    #[test]
    fn round_robin_overlaps_different_locks() {
        let trace = interleave_round_robin(&two_writers(1, 2));
        // Find positions: t0's lock, t1's lock, t0's unlock. The schedule
        // must overlap the two critical sections.
        let pos = |pred: &dyn Fn(&Event) -> bool| {
            trace.events().iter().position(pred).unwrap()
        };
        let t0_lock = pos(&|e| e.thread == 0 && matches!(e.op, Op::Lock { .. }));
        let t1_lock = pos(&|e| e.thread == 1 && matches!(e.op, Op::Lock { .. }));
        let t0_unlock = pos(&|e| e.thread == 0 && matches!(e.op, Op::Unlock { .. }));
        let t1_unlock = pos(&|e| e.thread == 1 && matches!(e.op, Op::Unlock { .. }));
        assert!(
            t0_lock < t1_unlock && t1_lock < t0_unlock,
            "critical sections must overlap in the schedule"
        );
    }

    #[test]
    fn same_lock_sections_never_overlap() {
        let trace = interleave_round_robin(&two_writers(7, 7));
        let mut holder: Option<usize> = None;
        for e in trace.events() {
            match e.op {
                Op::Lock { .. } => {
                    assert_eq!(holder, None, "lock acquired while held");
                    holder = Some(e.thread);
                }
                Op::Unlock { .. } => {
                    assert_eq!(holder, Some(e.thread));
                    holder = None;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn seeded_interleavings_are_deterministic() {
        let a = interleave_seeded(&two_writers(1, 2), 42);
        let b = interleave_seeded(&two_writers(1, 2), 42);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn seeded_interleavings_vary_with_seed() {
        // At least one of a handful of seeds must differ from round-robin.
        let rr = interleave_round_robin(&two_writers(1, 2));
        let differs = (0..10u64)
            .any(|s| interleave_seeded(&two_writers(1, 2), s).events() != rr.events());
        assert!(differs);
    }

    #[test]
    fn all_events_scheduled_exactly_once() {
        let programs = two_writers(1, 2);
        let total: usize = programs.iter().map(|p| p.ops().len()).sum();
        for seed in 0..5 {
            let trace = interleave_seeded(&programs, seed);
            assert_eq!(trace.events().len(), total);
        }
    }

    #[test]
    fn then_concatenates() {
        let programs = two_writers(1, 2);
        let t = sequential(&programs).then(sequential(&programs));
        assert_eq!(t.access_count(), 4);
    }

    #[test]
    fn json_round_trip_preserves_schedule() {
        let trace = interleave_seeded(&two_writers(1, 2), 7);
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.thread_count(), trace.thread_count());
    }

    #[test]
    fn json_rejects_out_of_range_threads() {
        let bad = r#"{"events":[{"thread":5,"op":{"Compute":{"cycles":1}}}],"threads":1}"#;
        assert!(Trace::from_json(bad).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_thread_rejected() {
        let _ = Trace::from_events(
            1,
            vec![Event {
                thread: 1,
                op: Op::Free { tag: ObjectTag(0) },
            }],
        );
    }
}
