//! Trace events: the operations a monitored program performs.

use kard_core::LockId;
use kard_sim::CodeSite;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A workload-level handle for an object, stable across the trace.
///
/// Tags are assigned by the workload; the replayer maps them to the
/// allocator's real object ids/addresses at execution time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ObjectTag(pub u64);

impl fmt::Debug for ObjectTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One operation by one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Allocate a heap object of `size` bytes, binding it to `tag`.
    Alloc {
        /// Workload handle for the new object.
        tag: ObjectTag,
        /// Requested size in bytes.
        size: u64,
    },
    /// Register a global of `size` bytes, binding it to `tag`.
    Global {
        /// Workload handle for the global.
        tag: ObjectTag,
        /// Size in bytes.
        size: u64,
    },
    /// Free the heap object bound to `tag`.
    Free {
        /// Handle of the object to free.
        tag: ObjectTag,
    },
    /// Acquire `lock` at call site `site` (critical-section entry).
    Lock {
        /// Lock identity.
        lock: LockId,
        /// Call site identifying the critical section.
        site: CodeSite,
    },
    /// Release `lock` (critical-section exit).
    Unlock {
        /// Lock identity.
        lock: LockId,
    },
    /// Read `tag` at byte `offset` from program location `ip`.
    Read {
        /// Object handle.
        tag: ObjectTag,
        /// Byte offset within the object.
        offset: u64,
        /// Program location of the access.
        ip: CodeSite,
    },
    /// Write `tag` at byte `offset` from program location `ip`.
    Write {
        /// Object handle.
        tag: ObjectTag,
        /// Byte offset within the object.
        offset: u64,
        /// Program location of the access.
        ip: CodeSite,
    },
    /// Pure computation costing `cycles` — the workload's baseline work.
    /// Detectors charge it to the executing thread; it touches no shared
    /// state and can never race.
    Compute {
        /// Cycles of baseline work.
        cycles: u64,
    },
}

impl Op {
    /// The object this operation touches, if any.
    #[must_use]
    pub fn tag(&self) -> Option<ObjectTag> {
        match *self {
            Op::Alloc { tag, .. }
            | Op::Global { tag, .. }
            | Op::Free { tag }
            | Op::Read { tag, .. }
            | Op::Write { tag, .. } => Some(tag),
            Op::Lock { .. } | Op::Unlock { .. } | Op::Compute { .. } => None,
        }
    }

    /// Whether this is a data access (read or write).
    #[must_use]
    pub fn is_access(&self) -> bool {
        matches!(self, Op::Read { .. } | Op::Write { .. })
    }
}

/// One scheduled event: an operation attributed to a logical thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Logical thread index (dense, starting at 0).
    pub thread: usize,
    /// The operation.
    pub op: Op,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_tag_extraction() {
        assert_eq!(
            Op::Alloc { tag: ObjectTag(3), size: 8 }.tag(),
            Some(ObjectTag(3))
        );
        assert_eq!(Op::Lock { lock: LockId(1), site: CodeSite(2) }.tag(), None);
        assert_eq!(
            Op::Read { tag: ObjectTag(9), offset: 0, ip: CodeSite(0) }.tag(),
            Some(ObjectTag(9))
        );
    }

    #[test]
    fn access_classification() {
        assert!(Op::Read { tag: ObjectTag(0), offset: 0, ip: CodeSite(0) }.is_access());
        assert!(Op::Write { tag: ObjectTag(0), offset: 0, ip: CodeSite(0) }.is_access());
        assert!(!Op::Free { tag: ObjectTag(0) }.is_access());
        assert!(!Op::Unlock { lock: LockId(0) }.is_access());
    }
}
