//! The executor interface: anything that can consume a trace.

use crate::event::Op;
use crate::schedule::Trace;

/// A sink for trace events.
///
/// Implementations include the Kard detector adapter (`kard-rt`), the
/// FastTrack and lockset baselines (`kard-baselines`), and cost-model-only
/// executors used to measure baseline execution.
pub trait Executor {
    /// Called once before any event, with the number of logical threads.
    fn start(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Deliver one event.
    fn on_event(&mut self, thread: usize, op: &Op);

    /// Called once after the last event.
    fn finish(&mut self) {}
}

/// Replay `trace` into `executor`.
pub fn replay<E: Executor>(trace: &Trace, executor: &mut E) {
    executor.start(trace.thread_count());
    for event in trace.events() {
        executor.on_event(event.thread, &event.op);
    }
    executor.finish();
}

/// An executor that merely counts events — useful in tests and as a
/// do-nothing baseline.
#[derive(Clone, Debug, Default)]
pub struct CountingExecutor {
    /// Total events delivered.
    pub events: u64,
    /// Data accesses delivered.
    pub accesses: u64,
    /// Critical-section entries delivered.
    pub cs_entries: u64,
    /// Threads announced via [`Executor::start`].
    pub threads: usize,
    /// Whether [`Executor::finish`] ran.
    pub finished: bool,
}

impl Executor for CountingExecutor {
    fn start(&mut self, threads: usize) {
        self.threads = threads;
    }

    fn on_event(&mut self, _thread: usize, op: &Op) {
        self.events += 1;
        if op.is_access() {
            self.accesses += 1;
        }
        if matches!(op, Op::Lock { .. }) {
            self.cs_entries += 1;
        }
    }

    fn finish(&mut self) {
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObjectTag;
    use crate::program::ThreadProgram;
    use crate::schedule::sequential;
    use kard_core::LockId;
    use kard_sim::CodeSite;

    #[test]
    fn counting_executor_sees_every_event() {
        let mut p = ThreadProgram::new();
        p.alloc(ObjectTag(0), 32);
        p.critical_section(LockId(1), CodeSite(1), |p| {
            p.write(ObjectTag(0), 0, CodeSite(2));
            p.read(ObjectTag(0), 0, CodeSite(3));
        });
        let trace = sequential(&[p]);
        let mut counter = CountingExecutor::default();
        replay(&trace, &mut counter);
        assert_eq!(counter.events, 5);
        assert_eq!(counter.accesses, 2);
        assert_eq!(counter.cs_entries, 1);
        assert_eq!(counter.threads, 1);
        assert!(counter.finished);
    }
}
