//! Per-thread operation lists with a small builder DSL.

use crate::event::{ObjectTag, Op};
use kard_core::LockId;
use kard_sim::CodeSite;

/// The operations one logical thread performs, in order.
///
/// ```
/// use kard_trace::{ThreadProgram, ObjectTag};
/// use kard_core::LockId;
/// use kard_sim::CodeSite;
///
/// let mut p = ThreadProgram::new();
/// p.alloc(ObjectTag(0), 32)
///     .lock(LockId(1), CodeSite(0x100))
///     .write(ObjectTag(0), 0, CodeSite(0x101))
///     .unlock(LockId(1));
/// assert_eq!(p.ops().len(), 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ThreadProgram {
    ops: Vec<Op>,
}

impl ThreadProgram {
    /// An empty program.
    #[must_use]
    pub fn new() -> ThreadProgram {
        ThreadProgram::default()
    }

    /// The operations recorded so far.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consume the builder, yielding the operations.
    #[must_use]
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Append a raw operation.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Allocate a heap object.
    pub fn alloc(&mut self, tag: ObjectTag, size: u64) -> &mut Self {
        self.push(Op::Alloc { tag, size })
    }

    /// Register a global.
    pub fn global(&mut self, tag: ObjectTag, size: u64) -> &mut Self {
        self.push(Op::Global { tag, size })
    }

    /// Free a heap object.
    pub fn free(&mut self, tag: ObjectTag) -> &mut Self {
        self.push(Op::Free { tag })
    }

    /// Enter a critical section.
    pub fn lock(&mut self, lock: LockId, site: CodeSite) -> &mut Self {
        self.push(Op::Lock { lock, site })
    }

    /// Exit a critical section.
    pub fn unlock(&mut self, lock: LockId) -> &mut Self {
        self.push(Op::Unlock { lock })
    }

    /// Read an object at an offset.
    pub fn read(&mut self, tag: ObjectTag, offset: u64, ip: CodeSite) -> &mut Self {
        self.push(Op::Read { tag, offset, ip })
    }

    /// Write an object at an offset.
    pub fn write(&mut self, tag: ObjectTag, offset: u64, ip: CodeSite) -> &mut Self {
        self.push(Op::Write { tag, offset, ip })
    }

    /// Perform `cycles` of pure computation (baseline work).
    pub fn compute(&mut self, cycles: u64) -> &mut Self {
        self.push(Op::Compute { cycles })
    }

    /// Append a whole locked region: lock, the given accesses, unlock.
    pub fn critical_section(
        &mut self,
        lock: LockId,
        site: CodeSite,
        body: impl FnOnce(&mut ThreadProgram),
    ) -> &mut Self {
        self.lock(lock, site);
        body(self);
        self.unlock(lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_in_order() {
        let mut p = ThreadProgram::new();
        p.alloc(ObjectTag(1), 64)
            .lock(LockId(2), CodeSite(0x10))
            .read(ObjectTag(1), 8, CodeSite(0x11))
            .write(ObjectTag(1), 8, CodeSite(0x12))
            .unlock(LockId(2))
            .free(ObjectTag(1));
        let ops = p.ops();
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0], Op::Alloc { .. }));
        assert!(matches!(ops[5], Op::Free { .. }));
    }

    #[test]
    fn critical_section_wraps_body() {
        let mut p = ThreadProgram::new();
        p.critical_section(LockId(1), CodeSite(0x100), |p| {
            p.write(ObjectTag(0), 0, CodeSite(0x101));
        });
        let ops = p.ops();
        assert!(matches!(ops[0], Op::Lock { .. }));
        assert!(matches!(ops[1], Op::Write { .. }));
        assert!(matches!(ops[2], Op::Unlock { .. }));
    }
}
