//! The firehose wire codec: framing and a fast event (de)serializer.
//!
//! `kard-server` streams [`Event`]s over sockets. Requests travel as
//! **length-prefixed JSON frames** (a 4-byte big-endian payload length,
//! then that many bytes of JSON), which keeps message boundaries explicit
//! and lets a reader reject oversized or truncated input before parsing
//! it. Responses travel back as JSON-Lines and need no special support.
//!
//! Two codecs produce byte-identical JSON for events:
//!
//! * the derived serde path (`serde_json::to_string` / `from_str`) — the
//!   source of truth for the wire shape;
//! * [`encode_event`] / [`decode_event`] — a specialized fast path that
//!   writes and scans the known shapes directly, with no intermediate
//!   `Value` tree. The decoder falls back to the serde path for any
//!   input it does not recognize, so it accepts everything serde accepts.
//!
//! The equivalence of the two paths is property-tested in
//! `tests/serde_roundtrip.rs`.

use crate::event::{Event, Op};
use crate::ObjectTag;
use kard_core::LockId;
use kard_sim::CodeSite;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload. Large enough for a several-thousand
/// event batch, small enough that a corrupt length prefix cannot make a
/// reader allocate gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Decode/framing failure.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error.
    Io(io::Error),
    /// A frame announced a payload larger than [`MAX_FRAME`].
    Oversize {
        /// Announced payload length.
        len: usize,
    },
    /// The stream ended inside a frame (mid-length or mid-payload).
    Truncated,
    /// The payload was not valid JSON for the expected type.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})")
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Write one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::Oversize`] if `payload` exceeds [`MAX_FRAME`], otherwise
/// any i/o error from `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversize { len: payload.len() });
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary); EOF inside a frame is [`WireError::Truncated`].
///
/// # Errors
///
/// [`WireError::Oversize`] for a length prefix beyond [`MAX_FRAME`],
/// [`WireError::Truncated`] for mid-frame EOF, or the underlying i/o
/// error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversize { len });
    }
    let mut payload = vec![0u8; len];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(WireError::Truncated),
        Err(e) => Err(WireError::Io(e)),
    }
}

/// Append one event's JSON to `out`, byte-identical to the serde path
/// (`serde_json::to_string(&event)`): object keys in lexicographic order,
/// compact separators.
pub fn encode_event(event: &Event, out: &mut String) {
    use std::fmt::Write as _;
    out.push_str("{\"op\":");
    match event.op {
        Op::Alloc { tag, size } => {
            let _ = write!(out, "{{\"Alloc\":{{\"size\":{},\"tag\":{}}}}}", size, tag.0);
        }
        Op::Global { tag, size } => {
            let _ = write!(out, "{{\"Global\":{{\"size\":{},\"tag\":{}}}}}", size, tag.0);
        }
        Op::Free { tag } => {
            let _ = write!(out, "{{\"Free\":{{\"tag\":{}}}}}", tag.0);
        }
        Op::Lock { lock, site } => {
            let _ = write!(out, "{{\"Lock\":{{\"lock\":{},\"site\":{}}}}}", lock.0, site.0);
        }
        Op::Unlock { lock } => {
            let _ = write!(out, "{{\"Unlock\":{{\"lock\":{}}}}}", lock.0);
        }
        Op::Read { tag, offset, ip } => {
            let _ = write!(
                out,
                "{{\"Read\":{{\"ip\":{},\"offset\":{},\"tag\":{}}}}}",
                ip.0, offset, tag.0
            );
        }
        Op::Write { tag, offset, ip } => {
            let _ = write!(
                out,
                "{{\"Write\":{{\"ip\":{},\"offset\":{},\"tag\":{}}}}}",
                ip.0, offset, tag.0
            );
        }
        Op::Compute { cycles } => {
            let _ = write!(out, "{{\"Compute\":{{\"cycles\":{cycles}}}}}");
        }
    }
    let _ = write!(out, ",\"thread\":{}}}", event.thread);
}

/// Encode a batch of events as a JSON array (the payload of a `Batch`
/// request frame).
#[must_use]
pub fn encode_batch(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_event(e, &mut out);
    }
    out.push(']');
    out
}

/// Decode one event. Tries the specialized scanner first and falls back
/// to the serde path, so any JSON serde accepts is accepted here.
///
/// # Errors
///
/// [`WireError::Malformed`] when the text is not a valid event.
pub fn decode_event(text: &str) -> Result<Event, WireError> {
    let mut s = Scanner::new(text.as_bytes());
    if let Some(e) = s.event() {
        if s.at_end() {
            return Ok(e);
        }
    }
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Decode a JSON array of events (a `Batch` payload).
///
/// # Errors
///
/// [`WireError::Malformed`] when the text is not a valid event array.
pub fn decode_batch(text: &str) -> Result<Vec<Event>, WireError> {
    let mut s = Scanner::new(text.as_bytes());
    if let Some(events) = s.batch() {
        if s.at_end() {
            return Ok(events);
        }
    }
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Byte scanner for the exact shapes [`encode_event`] (and the stub
/// serde path) produce: compact separators, lexicographic keys, optional
/// whitespace between tokens. Any mismatch returns `None` and the caller
/// falls back to serde.
struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Scanner<'a> {
    fn new(b: &'a [u8]) -> Scanner<'a> {
        Scanner { b, i: 0 }
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.ws();
        self.i == self.b.len()
    }

    fn tok(&mut self, t: &str) -> Option<()> {
        self.ws();
        if self.b[self.i..].starts_with(t.as_bytes()) {
            self.i += t.len();
            Some(())
        } else {
            None
        }
    }

    fn u64(&mut self) -> Option<u64> {
        self.ws();
        let start = self.i;
        while matches!(self.b.get(self.i), Some(b) if b.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse().ok()
    }

    fn batch(&mut self) -> Option<Vec<Event>> {
        self.tok("[")?;
        self.ws();
        let mut events = Vec::new();
        if self.tok("]").is_some() {
            return Some(events);
        }
        loop {
            events.push(self.event()?);
            self.ws();
            if self.tok(",").is_some() {
                continue;
            }
            self.tok("]")?;
            return Some(events);
        }
    }

    fn event(&mut self) -> Option<Event> {
        self.tok("{")?;
        self.tok("\"op\"")?;
        self.tok(":")?;
        let op = self.op()?;
        self.tok(",")?;
        self.tok("\"thread\"")?;
        self.tok(":")?;
        let thread = usize::try_from(self.u64()?).ok()?;
        self.tok("}")?;
        Some(Event { thread, op })
    }

    fn op(&mut self) -> Option<Op> {
        self.tok("{")?;
        self.ws();
        let op = if self.tok("\"Alloc\"").is_some() {
            let (size, tag) = self.size_tag()?;
            Op::Alloc { tag, size }
        } else if self.tok("\"Global\"").is_some() {
            let (size, tag) = self.size_tag()?;
            Op::Global { tag, size }
        } else if self.tok("\"Free\"").is_some() {
            self.tok(":")?;
            self.tok("{")?;
            self.tok("\"tag\"")?;
            self.tok(":")?;
            let tag = ObjectTag(self.u64()?);
            self.tok("}")?;
            Op::Free { tag }
        } else if self.tok("\"Lock\"").is_some() {
            self.tok(":")?;
            self.tok("{")?;
            self.tok("\"lock\"")?;
            self.tok(":")?;
            let lock = LockId(self.u64()?);
            self.tok(",")?;
            self.tok("\"site\"")?;
            self.tok(":")?;
            let site = CodeSite(self.u64()?);
            self.tok("}")?;
            Op::Lock { lock, site }
        } else if self.tok("\"Unlock\"").is_some() {
            self.tok(":")?;
            self.tok("{")?;
            self.tok("\"lock\"")?;
            self.tok(":")?;
            let lock = LockId(self.u64()?);
            self.tok("}")?;
            Op::Unlock { lock }
        } else if self.tok("\"Read\"").is_some() {
            let (ip, offset, tag) = self.ip_offset_tag()?;
            Op::Read { tag, offset, ip }
        } else if self.tok("\"Write\"").is_some() {
            let (ip, offset, tag) = self.ip_offset_tag()?;
            Op::Write { tag, offset, ip }
        } else if self.tok("\"Compute\"").is_some() {
            self.tok(":")?;
            self.tok("{")?;
            self.tok("\"cycles\"")?;
            self.tok(":")?;
            let cycles = self.u64()?;
            self.tok("}")?;
            Op::Compute { cycles }
        } else {
            return None;
        };
        self.tok("}")?;
        Some(op)
    }

    fn size_tag(&mut self) -> Option<(u64, ObjectTag)> {
        self.tok(":")?;
        self.tok("{")?;
        self.tok("\"size\"")?;
        self.tok(":")?;
        let size = self.u64()?;
        self.tok(",")?;
        self.tok("\"tag\"")?;
        self.tok(":")?;
        let tag = ObjectTag(self.u64()?);
        self.tok("}")?;
        Some((size, tag))
    }

    fn ip_offset_tag(&mut self) -> Option<(CodeSite, u64, ObjectTag)> {
        self.tok(":")?;
        self.tok("{")?;
        self.tok("\"ip\"")?;
        self.tok(":")?;
        let ip = CodeSite(self.u64()?);
        self.tok(",")?;
        self.tok("\"offset\"")?;
        self.tok(":")?;
        let offset = self.u64()?;
        self.tok(",")?;
        self.tok("\"tag\"")?;
        self.tok(":")?;
        let tag = ObjectTag(self.u64()?);
        self.tok("}")?;
        Some((ip, offset, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event { thread: 0, op: Op::Alloc { tag: ObjectTag(3), size: 64 } },
            Event { thread: 1, op: Op::Global { tag: ObjectTag(4), size: 8 } },
            Event {
                thread: 2,
                op: Op::Lock { lock: LockId(7), site: CodeSite(0x10) },
            },
            Event {
                thread: 2,
                op: Op::Write { tag: ObjectTag(3), offset: 8, ip: CodeSite(0x11) },
            },
            Event {
                thread: 2,
                op: Op::Read { tag: ObjectTag(3), offset: 16, ip: CodeSite(0x12) },
            },
            Event { thread: 2, op: Op::Unlock { lock: LockId(7) } },
            Event { thread: 0, op: Op::Compute { cycles: 1234 } },
            Event { thread: 0, op: Op::Free { tag: ObjectTag(3) } },
        ]
    }

    #[test]
    fn fast_encoder_matches_serde_bytes() {
        for e in sample_events() {
            let mut fast = String::new();
            encode_event(&e, &mut fast);
            assert_eq!(fast, serde_json::to_string(&e).unwrap());
        }
    }

    #[test]
    fn fast_decoder_round_trips_batches() {
        let events = sample_events();
        let text = encode_batch(&events);
        assert_eq!(decode_batch(&text).unwrap(), events);
    }

    #[test]
    fn decoder_accepts_whitespace_via_fallback() {
        let e = Event { thread: 9, op: Op::Compute { cycles: 5 } };
        let spaced = "{ \"op\" : { \"Compute\" : { \"cycles\" : 5 } } , \"thread\" : 9 }";
        assert_eq!(decode_event(spaced).unwrap(), e);
    }

    #[test]
    fn malformed_events_are_rejected() {
        for bad in [
            "",
            "null",
            "{}",
            "{\"op\":{\"Explode\":{}},\"thread\":0}",
            "{\"op\":{\"Compute\":{\"cycles\":-4}},\"thread\":0}",
            "{\"op\":{\"Compute\":{\"cycles\":1}},\"thread\":0} trailing",
            "{\"op\":{\"Compute\":{\"cycles\":1}}}",
        ] {
            assert!(decode_event(bad).is_err(), "accepted {bad:?}");
        }
        assert!(decode_batch("[{]").is_err());
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversize_frames_are_rejected() {
        // EOF inside the length prefix.
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated)));
        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated)));
        // A length prefix beyond MAX_FRAME never allocates its payload.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut r = &huge[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::Oversize { .. })));
        assert!(matches!(
            write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME + 1]),
            Err(WireError::Oversize { .. })
        ));
    }
}
