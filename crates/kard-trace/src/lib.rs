//! Program event traces and deterministic replay.
//!
//! The paper evaluates Kard by running multithreaded programs under it. The
//! reproduction models a program run as a **trace**: a totally ordered
//! sequence of [`Event`]s (allocations, lock/unlock, reads, writes), each
//! attributed to a logical thread. A trace *is* a schedule — both Kard and
//! the ILU definition are schedule-sensitive (§3.1), so making the schedule
//! an explicit, replayable value is what gives every experiment in this
//! repository deterministic results.
//!
//! * [`program::ThreadProgram`] — per-thread operation lists, built with a
//!   small DSL;
//! * [`schedule`] — interleaving strategies turning per-thread programs
//!   into a trace (round-robin, seeded-random, serial, and explicit);
//! * [`replay::Executor`] — the sink interface; `kard-rt` adapts the Kard
//!   detector to it and `kard-baselines` adapts FastTrack and lockset, so
//!   identical schedules drive every detector in comparisons;
//! * [`wire`] — the firehose wire codec: length-prefixed frames and a
//!   fast JSON event (de)serializer byte-compatible with the serde path,
//!   used by `kard-server` and its clients.

#![deny(missing_docs)]

pub mod event;
pub mod program;
pub mod replay;
pub mod schedule;
pub mod wire;

pub use event::{Event, ObjectTag, Op};
pub use program::ThreadProgram;
pub use replay::{CountingExecutor, Executor};
pub use schedule::{interleave_round_robin, interleave_seeded, sequential, PhasedProgram, Trace};
