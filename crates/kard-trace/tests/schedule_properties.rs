//! Property tests for the interleaving schedulers: every generated
//! schedule must be a per-thread-order-preserving permutation of the input
//! programs that respects lock mutual exclusion.

use kard_core::LockId;
use kard_sim::CodeSite;
use kard_trace::schedule::{interleave_round_robin, interleave_seeded, sequential};
use kard_trace::{ObjectTag, Op, ThreadProgram, Trace};
use proptest::prelude::*;

/// A generated step; locks are acquired and released in a balanced,
/// non-nested way so any interleaving is deadlock-free.
#[derive(Clone, Debug)]
enum Step {
    Section(u64, u8),
    Access(u64),
    Pad,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..3u64, 0..4u8).prop_map(|(l, n)| Step::Section(l, n)),
        (0..4u64).prop_map(Step::Access),
        Just(Step::Pad),
    ]
}

fn build(per_thread: &[Vec<Step>]) -> Vec<ThreadProgram> {
    per_thread
        .iter()
        .map(|steps| {
            let mut p = ThreadProgram::new();
            for step in steps {
                match *step {
                    Step::Section(lock, accesses) => {
                        p.lock(LockId(lock + 1), CodeSite(0x100 + lock));
                        for a in 0..accesses {
                            p.write(ObjectTag(u64::from(a) % 4), 0, CodeSite(1));
                        }
                        p.unlock(LockId(lock + 1));
                    }
                    Step::Access(o) => {
                        p.read(ObjectTag(o), 0, CodeSite(2));
                    }
                    Step::Pad => {
                        p.compute(1);
                    }
                }
            }
            p
        })
        .collect()
}

fn check_is_order_preserving_permutation(programs: &[ThreadProgram], trace: &Trace) {
    // Per thread, the scheduled subsequence equals the program verbatim.
    for (t, program) in programs.iter().enumerate() {
        let scheduled: Vec<Op> = trace
            .events()
            .iter()
            .filter(|e| e.thread == t)
            .map(|e| e.op)
            .collect();
        assert_eq!(scheduled, program.ops(), "thread {t} order broken");
    }
    let total: usize = programs.iter().map(|p| p.ops().len()).sum();
    assert_eq!(trace.events().len(), total, "event lost or duplicated");
}

fn check_mutual_exclusion(trace: &Trace) {
    let mut holder: std::collections::HashMap<LockId, usize> = std::collections::HashMap::new();
    for e in trace.events() {
        match e.op {
            Op::Lock { lock, .. } => {
                assert!(
                    !holder.contains_key(&lock),
                    "lock {lock:?} acquired while held"
                );
                holder.insert(lock, e.thread);
            }
            Op::Unlock { lock } => {
                assert_eq!(holder.remove(&lock), Some(e.thread), "foreign unlock");
            }
            _ => {}
        }
    }
    assert!(holder.is_empty(), "locks leaked at end of schedule");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_schedulers_produce_valid_schedules(
        per_thread in prop::collection::vec(
            prop::collection::vec(step_strategy(), 0..10),
            1..5
        ),
        seed in 0u64..10_000,
    ) {
        let programs = build(&per_thread);
        for trace in [
            sequential(&programs),
            interleave_round_robin(&programs),
            interleave_seeded(&programs, seed),
        ] {
            check_is_order_preserving_permutation(&programs, &trace);
            check_mutual_exclusion(&trace);
        }
    }

    #[test]
    fn seeded_schedules_are_reproducible(
        per_thread in prop::collection::vec(
            prop::collection::vec(step_strategy(), 1..8),
            2..4
        ),
        seed in 0u64..10_000,
    ) {
        let programs = build(&per_thread);
        let a = interleave_seeded(&programs, seed);
        let b = interleave_seeded(&programs, seed);
        prop_assert_eq!(a.events(), b.events());
    }

    #[test]
    fn trace_counters_are_consistent(
        per_thread in prop::collection::vec(
            prop::collection::vec(step_strategy(), 0..10),
            1..4
        ),
        seed in 0u64..10_000,
    ) {
        let programs = build(&per_thread);
        let trace = interleave_seeded(&programs, seed);
        let locks = trace
            .events()
            .iter()
            .filter(|e| matches!(e.op, Op::Lock { .. }))
            .count() as u64;
        let accesses = trace.events().iter().filter(|e| e.op.is_access()).count() as u64;
        prop_assert_eq!(trace.cs_entry_count(), locks);
        prop_assert_eq!(trace.access_count(), accesses);
    }
}
