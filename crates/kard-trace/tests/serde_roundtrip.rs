//! Property tests for the wire shape of the event vocabulary: the
//! firehose protocol (`kard-server`) depends on `encode → decode` being
//! the identity for every [`Op`]/[`Event`], on the fast codec in
//! [`kard_trace::wire`] agreeing byte-for-byte with the serde path, and
//! on malformed input being rejected rather than misread.

use kard_core::LockId;
use kard_sim::CodeSite;
use kard_trace::{wire, Event, ObjectTag, Op};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..u64::MAX, 0..u64::MAX)
            .prop_map(|(tag, size)| Op::Alloc { tag: ObjectTag(tag), size }),
        (0..u64::MAX, 0..u64::MAX)
            .prop_map(|(tag, size)| Op::Global { tag: ObjectTag(tag), size }),
        (0..u64::MAX).prop_map(|tag| Op::Free { tag: ObjectTag(tag) }),
        (0..u64::MAX, 0..u64::MAX)
            .prop_map(|(lock, site)| Op::Lock { lock: LockId(lock), site: CodeSite(site) }),
        (0..u64::MAX).prop_map(|lock| Op::Unlock { lock: LockId(lock) }),
        (0..u64::MAX, 0..u64::MAX, 0..u64::MAX).prop_map(|(tag, offset, ip)| Op::Read {
            tag: ObjectTag(tag),
            offset,
            ip: CodeSite(ip),
        }),
        (0..u64::MAX, 0..u64::MAX, 0..u64::MAX).prop_map(|(tag, offset, ip)| Op::Write {
            tag: ObjectTag(tag),
            offset,
            ip: CodeSite(ip),
        }),
        (0..u64::MAX).prop_map(|cycles| Op::Compute { cycles }),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (0..1024usize, op_strategy()).prop_map(|(thread, op)| Event { thread, op })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serde_round_trip_is_identity(event in event_strategy()) {
        let text = serde_json::to_string(&event).unwrap();
        let back: Event = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back, event);
    }

    #[test]
    fn fast_codec_matches_serde_bytes(event in event_strategy()) {
        let mut fast = String::new();
        wire::encode_event(&event, &mut fast);
        let via_serde = serde_json::to_string(&event).unwrap();
        prop_assert_eq!(&fast, &via_serde);
        // And both texts decode back to the event through the fast path.
        prop_assert_eq!(wire::decode_event(&fast).unwrap(), event);
    }

    #[test]
    fn batches_round_trip(events in prop::collection::vec(event_strategy(), 0..64)) {
        let text = wire::encode_batch(&events);
        prop_assert_eq!(wire::decode_batch(&text).unwrap(), events.clone());
        // The batch text is exactly the serde encoding of the vector.
        prop_assert_eq!(text, serde_json::to_string(&events).unwrap());
    }

    #[test]
    fn corrupting_one_byte_never_misreads(event in event_strategy(), pos in 0..4096usize) {
        // Flipping a structural byte must yield either a decode error or a
        // *valid* decode of exactly the corrupted text via the serde
        // fallback — never a panic, never an out-of-bounds read.
        let mut text = serde_json::to_string(&event).unwrap().into_bytes();
        let i = pos % text.len();
        text[i] = text[i].wrapping_add(1);
        if let Ok(s) = std::str::from_utf8(&text) {
            let _ = wire::decode_event(s);
        }
    }

    #[test]
    fn truncated_json_is_rejected(event in event_strategy(), cut in 1..64usize) {
        let text = serde_json::to_string(&event).unwrap();
        let cut = cut.min(text.len() - 1);
        let truncated = &text[..text.len() - cut];
        prop_assert!(wire::decode_event(truncated).is_err(), "accepted {truncated:?}");
    }
}

#[test]
fn unknown_variants_and_shape_mismatches_are_rejected() {
    for bad in [
        // Unknown op variant.
        r#"{"op":{"Jump":{"to":3}},"thread":0}"#,
        // Missing field.
        r#"{"op":{"Alloc":{"size":8}},"thread":0}"#,
        // Wrong payload type.
        r#"{"op":{"Compute":{"cycles":"many"}},"thread":0}"#,
        // Thread index out of range for usize semantics (negative).
        r#"{"op":{"Compute":{"cycles":1}},"thread":-2}"#,
        // Op is not an object.
        r#"{"op":7,"thread":0}"#,
    ] {
        assert!(
            serde_json::from_str::<Event>(bad).is_err(),
            "serde accepted {bad:?}"
        );
        assert!(
            wire::decode_event(bad).is_err(),
            "wire codec accepted {bad:?}"
        );
    }
}
