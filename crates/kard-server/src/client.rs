//! A small blocking client for the firehose protocol.
//!
//! Wraps one socket (TCP or Unix) and the session handshake, collects
//! race report lines as they arrive, and exposes the request/response
//! pairs (`flush`, `stats`, `bye`) as plain blocking calls. The raw
//! received report lines are kept verbatim so tests can compare runs
//! byte for byte.

use crate::proto::{
    parse_response, request_payload, Request, Response, SessionSummary, Statsz, WireRace,
};
use kard_trace::wire::write_frame;
use kard_trace::Event;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

enum ClientSock {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for ClientSock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientSock::Tcp(s) => s.read(buf),
            ClientSock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientSock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientSock::Tcp(s) => s.write(buf),
            ClientSock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientSock::Tcp(s) => s.flush(),
            ClientSock::Unix(s) => s.flush(),
        }
    }
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// One client session on a running firehose server.
pub struct FirehoseClient {
    writer: ClientSock,
    reader: BufReader<ClientSock>,
    session: u64,
    shard: usize,
    races: Vec<WireRace>,
    race_lines: Vec<String>,
}

impl FirehoseClient {
    /// Connect over TCP and perform the Hello handshake.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a rejected handshake.
    pub fn connect(addr: impl ToSocketAddrs, client: &str) -> io::Result<FirehoseClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = ClientSock::Tcp(stream.try_clone()?);
        FirehoseClient::handshake(ClientSock::Tcp(stream), reader, client)
    }

    /// Connect over a Unix socket and perform the Hello handshake.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a rejected handshake.
    pub fn connect_unix(path: impl AsRef<Path>, client: &str) -> io::Result<FirehoseClient> {
        let stream = UnixStream::connect(path)?;
        let reader = ClientSock::Unix(stream.try_clone()?);
        FirehoseClient::handshake(ClientSock::Unix(stream), reader, client)
    }

    fn handshake(writer: ClientSock, reader: ClientSock, client: &str) -> io::Result<FirehoseClient> {
        let mut this = FirehoseClient {
            writer,
            reader: BufReader::new(reader),
            session: 0,
            shard: 0,
            races: Vec::new(),
            race_lines: Vec::new(),
        };
        this.send(&Request::Hello {
            client: client.to_string(),
        })?;
        match this.recv()? {
            Response::Hello { session, shard } => {
                this.session = session;
                this.shard = shard;
                Ok(this)
            }
            Response::Error { message } => Err(bad_data(message)),
            other => Err(bad_data(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// The server-assigned session serial.
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The shard this session routed to.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Race reports received so far (in delivery order).
    #[must_use]
    pub fn races(&self) -> &[WireRace] {
        &self.races
    }

    /// The raw JSON report lines exactly as received, for byte-identical
    /// run comparisons.
    #[must_use]
    pub fn race_lines(&self) -> &[String] {
        &self.race_lines
    }

    /// Send one request frame.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        self.send_payload(&request_payload(request))
    }

    /// Send a pre-encoded request payload (benchmarks encode each burst
    /// once, outside the timed region).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send_payload(&mut self, payload: &str) -> io::Result<()> {
        write_frame(&mut self.writer, payload.as_bytes())
            .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
        self.writer.flush()
    }

    /// Send a batch of events.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send_batch(&mut self, events: &[Event]) -> io::Result<()> {
        self.send(&Request::Batch(events.to_vec()))
    }

    fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_response(&line).map_err(bad_data)
    }

    /// Read responses until `want` picks one, collecting race reports
    /// along the way.
    fn recv_until<T>(&mut self, mut want: impl FnMut(Response) -> Option<T>) -> io::Result<T> {
        loop {
            let response = self.recv()?;
            if let Response::Race(race) = &response {
                self.race_lines
                    .push(crate::proto::response_line(&Response::Race(race.clone())));
                self.races.push(race.clone());
            }
            if let Response::Error { message } = &response {
                return Err(bad_data(message.clone()));
            }
            if let Some(out) = want(response) {
                return Ok(out);
            }
        }
    }

    /// Flush the session: apply everything accepted so far and collect
    /// the pending race reports.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and server-reported protocol errors.
    pub fn flush(&mut self) -> io::Result<SessionSummary> {
        self.send(&Request::Flush)?;
        self.recv_until(|r| match r {
            Response::Flushed(summary) => Some(summary),
            _ => None,
        })
    }

    /// Fetch a `/statsz` snapshot.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and server-reported protocol errors.
    pub fn stats(&mut self) -> io::Result<Statsz> {
        self.send(&Request::Stats)?;
        self.recv_until(|r| match r {
            Response::Stats(stats) => Some(stats),
            _ => None,
        })
    }

    /// End the session and collect the final summary.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and server-reported protocol errors.
    pub fn bye(&mut self) -> io::Result<SessionSummary> {
        self.send(&Request::Bye)?;
        self.wait_bye()
    }

    /// Wait for the server to end the session (after a `Bye`, an
    /// eviction, or a server shutdown), collecting reports on the way.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and server-reported protocol errors.
    pub fn wait_bye(&mut self) -> io::Result<SessionSummary> {
        self.recv_until(|r| match r {
            Response::Bye(summary) => Some(summary),
            _ => None,
        })
    }

    /// Ask the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)
    }
}
