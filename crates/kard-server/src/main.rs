//! The `kard-server` binary: a race-detection firehose daemon.
//!
//! ```text
//! kard-server [--tcp ADDR] [--unix PATH] [--shards N] [--queue-bound N]
//!             [--idle-timeout-ms N] [--throttle-us N] [--telemetry]
//!             [--stats-every SECS]
//! ```
//!
//! The process runs until a client sends the `Shutdown` control request,
//! then drains every shard, flushes every session's pending reports, and
//! exits. (The container has no signal-handling dependency, so SIGTERM
//! handling is delegated to the protocol-level shutdown command; a
//! supervisor should send `{"Shutdown":null}`-framed shutdown before
//! killing the process.)

#![deny(missing_docs)]

use kard_server::{Server, ServerConfig};
use std::time::Duration;

const USAGE: &str = "kard-server: race-detection firehose daemon

USAGE:
    kard-server [OPTIONS]

OPTIONS:
    --tcp ADDR            TCP listen address (default 127.0.0.1:7433; 'off' disables)
    --unix PATH           also listen on a Unix socket at PATH
    --shards N            detector shards / OS threads (default 4)
    --queue-bound N       per-session ingest budget in events (default 16384)
    --idle-timeout-ms N   evict sessions idle for N ms (0 disables; default 60000)
    --throttle-us N       artificial per-event apply cost, microseconds (default 0)
    --telemetry           enable fault-path telemetry (richer /statsz histograms)
    --stats-every SECS    print a /statsz JSON line every SECS seconds
    --help                print this help
";

fn fail(message: &str) -> ! {
    eprintln!("kard-server: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        fail(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => fail(&format!("invalid value for {flag}: {value}")),
    }
}

fn main() {
    let mut config = ServerConfig {
        tcp: Some("127.0.0.1:7433".to_string()),
        ..ServerConfig::default()
    };
    let mut stats_every: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => {
                let addr: String = parse_number("--tcp", args.next());
                config.tcp = if addr == "off" { None } else { Some(addr) };
            }
            "--unix" => config.unix = Some(parse_number::<String>("--unix", args.next()).into()),
            "--shards" => config.shards = parse_number("--shards", args.next()),
            "--queue-bound" => config.queue_bound = parse_number("--queue-bound", args.next()),
            "--idle-timeout-ms" => {
                let ms: u64 = parse_number("--idle-timeout-ms", args.next());
                config.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--throttle-us" => {
                let us: u64 = parse_number("--throttle-us", args.next());
                config.apply_throttle = Duration::from_micros(us);
            }
            "--telemetry" => config.telemetry = true,
            "--stats-every" => stats_every = parse_number("--stats-every", args.next()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument: {other}")),
        }
    }
    if config.tcp.is_none() && config.unix.is_none() {
        fail("nothing to listen on: --tcp off without --unix");
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => fail(&format!("failed to start: {e}")),
    };
    if let Some(addr) = server.tcp_addr() {
        println!("kard-server listening on tcp://{addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("kard-server listening on unix:{}", path.display());
    }

    if stats_every > 0 {
        // Detached printer: it holds only a stats handle and stops once
        // the drain begins, so it never delays exit.
        let stats = server.stats_handle();
        let every = Duration::from_secs(stats_every);
        std::thread::spawn(move || {
            while !stats.is_shutting_down() {
                std::thread::sleep(every);
                if let Ok(line) = serde_json::to_string(&stats.statsz()) {
                    println!("{line}");
                }
            }
        });
    }

    println!("send the Shutdown control request to drain and exit");
    server.join();
    println!("kard-server drained cleanly");
}
