//! The shard engine: one OS thread owning one single-threaded detector.
//!
//! Every session hashes to exactly one shard and every shard owns its
//! detector, simulated machine, and allocator outright — shards share
//! *nothing*, so there is no cross-shard lock ordering to reason about
//! and a stalled shard can never wedge its siblings. Connection readers
//! communicate with a shard only through its bounded [`ShardQueue`]
//! (fail-open: a full per-session budget drops the batch and counts it,
//! it never blocks the socket loop), and the shard communicates back
//! only through per-session [`Outbox`]es.
//!
//! Inside a shard, each client session gets a private namespace: client
//! lock ids and lock sites are remapped to shard-unique values (section
//! identity is the lock site, and two sessions reusing `0x1000` must not
//! alias), object tags map to detector objects, and client thread
//! indices map to detector threads. Race reports are translated back
//! through the same maps before delivery, so clients only ever see their
//! own vocabulary.

use crate::proto::{Response, SessionSummary, WireRace, WireSide};
use crate::ServerConfig;
use kard_core::{Kard, LockId, RaceRecord, RaceSide};
use kard_sim::CodeSite;
use kard_telemetry::{AnomalySignal, LatencyHistogram};
use kard_trace::{Event, Op};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often an idle shard wakes to scan for evictable sessions. Also
/// the telemetry drain cadence: the shard fans one drained batch through
/// the runtime's consumer pipeline (analyzer, production tick) at most
/// once per tick, so anomaly windows stay coarse enough to be meaningful
/// under a busy queue.
const EVICT_TICK: Duration = Duration::from_millis(25);

/// How many session-attributed anomaly signals a shard keeps for
/// `/statsz` before the oldest age out.
const ANOMALY_KEEP: usize = 32;

/// Upper bound on a single `Compute` charge, protecting the shard's
/// shared virtual clock from one absurd event freezing the timestamp
/// filter for everyone else on the shard.
const MAX_COMPUTE_CYCLES: u64 = 1 << 20;

/// Namespaced lock sites are allocated from this base upward. Race
/// records carry them both as section ids and — until protection
/// interleaving learns the holder's true access ip — as the holding
/// side's `ip`, so translation must be able to tell a namespaced site
/// from a client-supplied ip by range alone.
const SITE_NAMESPACE_BASE: u64 = 1 << 48;

/// One unit of work handed from a connection reader to a shard.
pub(crate) enum Work {
    /// A new session joined the shard.
    Attach(Arc<SessionHandle>),
    /// A batch of events for an attached session.
    Events {
        /// Session serial.
        session: u64,
        /// The decoded events.
        events: Vec<Event>,
        /// When the reader enqueued the batch (ingest-latency clock).
        enqueued: Instant,
    },
    /// Deliver pending races and a `Flushed` summary.
    Flush {
        /// Session serial.
        session: u64,
    },
    /// The client ended the session (`Bye`).
    Detach {
        /// Session serial.
        session: u64,
    },
}

/// The half of a session shared between its connection threads and its
/// shard: counters and the response outbox.
pub(crate) struct SessionHandle {
    /// Server-assigned serial (the key shards use to find the session).
    pub serial: u64,
    /// Events currently sitting in the shard queue for this session.
    /// Incremented by the reader at enqueue, decremented by the shard at
    /// apply; the reader's bound check reads it without locking.
    pub queued: AtomicU64,
    /// Events dropped fail-open at the queue bound.
    pub dropped: AtomicU64,
    /// Events applied to the detector.
    pub applied: AtomicU64,
    /// Events rejected as invalid.
    pub rejected: AtomicU64,
    /// Race reports delivered.
    pub races: AtomicU64,
    /// Set once the session has ended (Bye pushed); readers stop
    /// accepting frames for it.
    pub done: AtomicBool,
    /// Response lines awaiting the connection writer.
    pub outbox: Outbox,
}

impl SessionHandle {
    pub(crate) fn new(serial: u64) -> SessionHandle {
        SessionHandle {
            serial,
            queued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            races: AtomicU64::new(0),
            done: AtomicBool::new(false),
            outbox: Outbox::default(),
        }
    }

    pub(crate) fn summary(&self, evicted: bool) -> SessionSummary {
        SessionSummary {
            session: self.serial,
            applied: self.applied.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            evicted,
        }
    }
}

/// A closable line queue between a shard and one connection writer.
#[derive(Default)]
pub(crate) struct Outbox {
    inner: Mutex<OutboxInner>,
    cond: Condvar,
}

#[derive(Default)]
struct OutboxInner {
    lines: VecDeque<String>,
    closed: bool,
}

impl Outbox {
    /// Queue one response line. Lines pushed after close are discarded.
    pub(crate) fn push(&self, line: String) {
        let mut inner = self.inner.lock().expect("outbox poisoned");
        if !inner.closed {
            inner.lines.push_back(line);
            self.cond.notify_one();
        }
    }

    /// Close the outbox: the writer drains what is queued, then stops.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("outbox poisoned").closed = true;
        self.cond.notify_all();
    }

    /// Blocking pop; `None` once closed and empty.
    pub(crate) fn pop(&self) -> Option<String> {
        let mut inner = self.inner.lock().expect("outbox poisoned");
        loop {
            if let Some(line) = inner.lines.pop_front() {
                return Some(line);
            }
            if inner.closed {
                return None;
            }
            inner = self.cond.wait(inner).expect("outbox poisoned");
        }
    }
}

/// The shard's work queue (multi-producer readers, one consumer).
#[derive(Default)]
pub(crate) struct ShardQueue {
    inner: Mutex<QueueInner>,
    cond: Condvar,
}

#[derive(Default)]
struct QueueInner {
    items: VecDeque<Work>,
    closed: bool,
}

/// Outcome of a timed queue pop.
pub(crate) enum Poll {
    /// A work item.
    Item(Work),
    /// Nothing arrived within the tick; run maintenance.
    Timeout,
    /// Queue closed *and* fully drained: the shard may exit.
    Drained,
}

impl ShardQueue {
    /// Enqueue one work item (accepted even after close, so in-flight
    /// readers never panic; the shard drains whatever made it in before
    /// it observes the closed+empty state).
    pub(crate) fn push(&self, work: Work) {
        let mut inner = self.inner.lock().expect("shard queue poisoned");
        inner.items.push_back(work);
        self.cond.notify_one();
    }

    /// Stop the shard once the queue empties.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("shard queue poisoned").closed = true;
        self.cond.notify_all();
    }

    fn pop(&self, tick: Duration) -> Poll {
        let mut inner = self.inner.lock().expect("shard queue poisoned");
        loop {
            if let Some(work) = inner.items.pop_front() {
                return Poll::Item(work);
            }
            if inner.closed {
                return Poll::Drained;
            }
            let (guard, timeout) = self
                .cond
                .wait_timeout(inner, tick)
                .expect("shard queue poisoned");
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() && !inner.closed {
                return Poll::Timeout;
            }
        }
    }
}

/// Per-shard state shared with the server front end: the queue plus the
/// counters `/statsz` reads without disturbing the shard.
pub(crate) struct ShardShared {
    /// The work queue.
    pub queue: ShardQueue,
    /// Events queued across all of the shard's sessions.
    pub queue_depth: AtomicU64,
    /// Sessions currently attached.
    pub active_sessions: AtomicU64,
    /// Events applied to the detector.
    pub applied: AtomicU64,
    /// Events dropped fail-open.
    pub dropped: AtomicU64,
    /// Events rejected as invalid.
    pub rejected: AtomicU64,
    /// Race reports delivered.
    pub races: AtomicU64,
    /// Sessions evicted for idleness.
    pub evictions: AtomicU64,
    /// Queue→apply latency, nanoseconds.
    pub ingest_latency: LatencyHistogram,
    /// Recent anomaly signals, session-enriched by the shard (newest
    /// last, capped at [`ANOMALY_KEEP`]). `/statsz` clones this without
    /// disturbing the shard thread.
    pub anomalies: Mutex<Vec<AnomalySignal>>,
}

impl Default for ShardShared {
    fn default() -> ShardShared {
        ShardShared {
            queue: ShardQueue::default(),
            queue_depth: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            races: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            ingest_latency: LatencyHistogram::new(),
            anomalies: Mutex::new(Vec::new()),
        }
    }
}

/// One client session's private namespace inside a shard.
struct ClientState {
    handle: Arc<SessionHandle>,
    /// Client thread index → detector thread.
    threads: HashMap<usize, kard_sim::ThreadId>,
    /// Detector thread → client thread index (report translation).
    thread_names: HashMap<usize, usize>,
    /// Client lock id → shard-unique lock id.
    locks: HashMap<u64, LockId>,
    /// Client lock site → shard-unique lock site.
    sites: HashMap<u64, CodeSite>,
    /// Shard lock site → client lock site (report translation).
    site_names: HashMap<u64, u64>,
    /// Client tag → live object.
    objects: HashMap<u64, kard_alloc::ObjectInfo>,
    /// Detector object id → client tag; survives frees so races on
    /// freed objects still translate.
    object_names: HashMap<u64, u64>,
    /// Locks currently held, per client thread, in acquisition order.
    held: HashMap<usize, Vec<u64>>,
    /// Bytes currently allocated (the per-session memory cap's meter).
    live_bytes: u64,
    /// Owned race records already delivered (cursor into the filtered
    /// report list).
    delivered: usize,
    /// Anomaly signals attributed to this session so far (the
    /// pathological-client eviction policy's meter).
    anomaly_signals: u64,
    /// Last time the shard applied work for this session.
    last_activity: Instant,
}

impl ClientState {
    fn new(handle: Arc<SessionHandle>) -> ClientState {
        ClientState {
            handle,
            threads: HashMap::new(),
            thread_names: HashMap::new(),
            locks: HashMap::new(),
            sites: HashMap::new(),
            site_names: HashMap::new(),
            objects: HashMap::new(),
            object_names: HashMap::new(),
            held: HashMap::new(),
            live_bytes: 0,
            delivered: 0,
            anomaly_signals: 0,
            last_activity: Instant::now(),
        }
    }
}

/// Everything a shard thread owns.
pub(crate) struct ShardEngine {
    rt: kard_rt::Session,
    shared: Arc<ShardShared>,
    config: ServerConfig,
    sessions: HashMap<u64, ClientState>,
    /// Shard-wide id wells for the per-session lock/site namespaces.
    next_lock: u64,
    next_site: u64,
    /// Last telemetry drain (throttles the consumer pipeline to one
    /// window per [`EVICT_TICK`] even when the queue is busy).
    last_drain: Instant,
}

impl ShardEngine {
    pub(crate) fn new(
        rt: kard_rt::Session,
        shared: Arc<ShardShared>,
        config: ServerConfig,
    ) -> ShardEngine {
        ShardEngine {
            rt,
            shared,
            config,
            sessions: HashMap::new(),
            next_lock: 1,
            next_site: SITE_NAMESPACE_BASE,
            last_drain: Instant::now(),
        }
    }

    /// The shard main loop: apply work until the queue closes and
    /// drains, then end every remaining session (drained + flushed, as
    /// graceful shutdown promises).
    pub(crate) fn run(mut self) {
        loop {
            match self.shared.queue.pop(EVICT_TICK) {
                Poll::Item(work) => self.handle(work),
                Poll::Timeout => {}
                Poll::Drained => break,
            }
            self.evict_idle();
            // In production mode this doubles as the overhead-budget
            // controller's heartbeat: one tick per work item or idle
            // wake, so the sampling width tracks the shard's actual
            // apply-side overhead. A no-op when production mode is off.
            self.rt.kard().production_tick();
            if self.last_drain.elapsed() >= EVICT_TICK {
                self.last_drain = Instant::now();
                self.observe_telemetry();
            }
        }
        // One final drain so last-window signals are attributed while
        // their sessions are still alive.
        self.observe_telemetry();
        let serials: Vec<u64> = self.sessions.keys().copied().collect();
        for serial in serials {
            self.end_session(serial, true, false);
        }
    }

    fn handle(&mut self, work: Work) {
        match work {
            Work::Attach(handle) => {
                self.shared.active_sessions.fetch_add(1, Ordering::Relaxed);
                self.sessions
                    .insert(handle.serial, ClientState::new(handle));
            }
            Work::Events {
                session,
                events,
                enqueued,
            } => self.apply_batch(session, events, enqueued),
            Work::Flush { session } => {
                if let Some(state) = self.sessions.get_mut(&session) {
                    state.last_activity = Instant::now();
                }
                self.deliver_races(session);
                if let Some(state) = self.sessions.get(&session) {
                    let line =
                        crate::proto::response_line(&Response::Flushed(state.handle.summary(false)));
                    state.handle.outbox.push(line);
                }
            }
            Work::Detach { session } => self.end_session(session, false, false),
        }
    }

    fn apply_batch(&mut self, session: u64, events: Vec<Event>, enqueued: Instant) {
        let n = events.len() as u64;
        self.shared.queue_depth.fetch_sub(n, Ordering::Relaxed);
        let Some(state) = self.sessions.get_mut(&session) else {
            // The session was evicted while the batch sat in the queue;
            // fail open, exactly like a queue-bound drop.
            self.shared.dropped.fetch_add(n, Ordering::Relaxed);
            return;
        };
        state.handle.queued.fetch_sub(n, Ordering::Relaxed);
        state.last_activity = Instant::now();
        let latency = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.shared.ingest_latency.record(latency);
        let throttle = self.config.apply_throttle;
        let mut applied = 0u64;
        let mut rejected = 0u64;
        let kard = Arc::clone(self.rt.kard());
        for event in events {
            match Self::apply_event(
                &kard,
                state,
                &mut self.next_lock,
                &mut self.next_site,
                &self.config,
                &event,
            ) {
                Ok(()) => applied += 1,
                Err(_why) => rejected += 1,
            }
            if !throttle.is_zero() {
                std::thread::sleep(throttle);
            }
        }
        state.handle.applied.fetch_add(applied, Ordering::Relaxed);
        state.handle.rejected.fetch_add(rejected, Ordering::Relaxed);
        self.shared.applied.fetch_add(applied, Ordering::Relaxed);
        self.shared.rejected.fetch_add(rejected, Ordering::Relaxed);
    }

    /// Apply one event inside a session's namespace. Invalid events are
    /// rejected (skipped and counted) — a hostile or buggy client must
    /// never panic a shard.
    fn apply_event(
        kard: &Arc<Kard>,
        state: &mut ClientState,
        next_lock: &mut u64,
        next_site: &mut u64,
        config: &ServerConfig,
        event: &Event,
    ) -> Result<(), &'static str> {
        // Resolve (or lazily register) the client thread.
        let t = match state.threads.get(&event.thread) {
            Some(&t) => t,
            None => {
                if state.threads.len() >= config.max_session_threads {
                    return Err("session thread cap exceeded");
                }
                let t = kard.register_thread();
                state.threads.insert(event.thread, t);
                state.thread_names.insert(t.0, event.thread);
                t
            }
        };
        match &event.op {
            Op::Alloc { tag, size } | Op::Global { tag, size } => {
                if *size == 0 {
                    return Err("zero-size allocation");
                }
                if state.objects.contains_key(&tag.0) {
                    return Err("tag already live");
                }
                if state.objects.len() >= config.max_session_objects {
                    return Err("session object cap exceeded");
                }
                if state.live_bytes.saturating_add(*size) > config.max_session_bytes {
                    return Err("session memory cap exceeded");
                }
                let info = if matches!(event.op, Op::Alloc { .. }) {
                    kard.on_alloc(t, *size)
                } else {
                    kard.on_global(t, *size)
                };
                state.live_bytes += *size;
                state.object_names.insert(info.id.0, tag.0);
                state.objects.insert(tag.0, info);
                Ok(())
            }
            Op::Free { tag } => {
                let Some(info) = state.objects.remove(&tag.0) else {
                    return Err("free of unknown tag");
                };
                state.live_bytes = state.live_bytes.saturating_sub(info.size);
                kard.on_free(t, info.id);
                Ok(())
            }
            Op::Lock { lock, site } => {
                let held = state.held.entry(event.thread).or_default();
                if held.contains(&lock.0) {
                    return Err("recursive lock");
                }
                let server_lock = *state.locks.entry(lock.0).or_insert_with(|| {
                    *next_lock += 1;
                    LockId(*next_lock)
                });
                let server_site = *state.sites.entry(site.0).or_insert_with(|| {
                    *next_site += 1;
                    let s = CodeSite(*next_site);
                    state.site_names.insert(s.0, site.0);
                    s
                });
                held.push(lock.0);
                kard.lock_enter(t, server_lock, server_site);
                Ok(())
            }
            Op::Unlock { lock } => {
                let held = state.held.entry(event.thread).or_default();
                let Some(pos) = held.iter().position(|&l| l == lock.0) else {
                    return Err("unlock of lock not held");
                };
                held.remove(pos);
                let server_lock = state.locks[&lock.0];
                kard.lock_exit(t, server_lock);
                Ok(())
            }
            Op::Read { tag, offset, ip } | Op::Write { tag, offset, ip } => {
                let Some(info) = state.objects.get(&tag.0) else {
                    return Err("access to unknown tag");
                };
                if *offset >= info.rounded_size {
                    return Err("access beyond object bounds");
                }
                let addr = info.base.offset(*offset);
                if matches!(event.op, Op::Read { .. }) {
                    kard.read(t, addr, *ip);
                } else {
                    kard.write(t, addr, *ip);
                }
                Ok(())
            }
            Op::Compute { cycles } => {
                kard.machine().charge(t, (*cycles).min(MAX_COMPUTE_CYCLES));
                Ok(())
            }
        }
    }

    /// Push this session's not-yet-delivered race reports, translated to
    /// client vocabulary and canonically sorted.
    ///
    /// Ownership is attributed through the faulting thread: a session's
    /// records are a function of its own applied events (sessions share
    /// no objects or locks), so filtering the shard's full report list
    /// per session is deterministic regardless of how sessions
    /// interleaved on the shard.
    fn deliver_races(&mut self, session: u64) {
        let Some(state) = self.sessions.get_mut(&session) else {
            return;
        };
        let reports = self.rt.kard().reports();
        let owned: Vec<&RaceRecord> = reports
            .iter()
            .filter(|r| state.thread_names.contains_key(&r.faulting.thread.0))
            .collect();
        // §5.5 pruning may retract records after the fact; never let the
        // cursor point past the end.
        state.delivered = state.delivered.min(owned.len());
        let mut fresh: Vec<WireRace> = owned[state.delivered..]
            .iter()
            .map(|r| Self::translate(state, r))
            .collect();
        state.delivered = owned.len();
        if fresh.is_empty() {
            return;
        }
        fresh.sort_by_key(WireRace::sort_key);
        let n = fresh.len() as u64;
        for race in fresh {
            state
                .handle
                .outbox
                .push(crate::proto::response_line(&Response::Race(race)));
        }
        state.handle.races.fetch_add(n, Ordering::Relaxed);
        self.shared.races.fetch_add(n, Ordering::Relaxed);
    }

    fn translate(state: &ClientState, record: &RaceRecord) -> WireRace {
        // Sites in the namespaced range map back to the client's values;
        // anything below the base is already a client-supplied ip.
        let unsite = |site: u64| {
            if site >= SITE_NAMESPACE_BASE {
                state.site_names.get(&site).copied().unwrap_or(site)
            } else {
                site
            }
        };
        let side = |s: &RaceSide| WireSide {
            thread: state
                .thread_names
                .get(&s.thread.0)
                .copied()
                .unwrap_or(usize::MAX),
            section: s.section.map(|sec| unsite(sec.0 .0)),
            ip: unsite(s.ip.0),
            offset: s.offset,
        };
        WireRace {
            object: state
                .object_names
                .get(&record.object.0)
                .copied()
                .unwrap_or(u64::MAX),
            access: record.access,
            faulting: side(&record.faulting),
            holding: side(&record.holding),
        }
    }

    /// End a session: deliver pending races, release everything it still
    /// holds (locks, objects, threads), push `Bye`, close the outbox.
    fn end_session(&mut self, session: u64, evicted: bool, idle: bool) {
        self.deliver_races(session);
        let Some(mut state) = self.sessions.remove(&session) else {
            return;
        };
        let kard = self.rt.kard();
        // Release locks in reverse acquisition order per thread, so the
        // detector's section state unwinds cleanly.
        for (client_thread, held) in std::mem::take(&mut state.held) {
            let Some(&t) = state.threads.get(&client_thread) else {
                continue;
            };
            for client_lock in held.into_iter().rev() {
                kard.lock_exit(t, state.locks[&client_lock]);
            }
        }
        if let Some(&t) = state.threads.values().next() {
            for (_, info) in state.objects.drain() {
                kard.on_free(t, info.id);
            }
        }
        for (_, t) in state.threads.drain() {
            kard.on_thread_exit(t);
        }
        state.handle.done.store(true, Ordering::Release);
        // Update the shared counters *before* the Bye frame becomes
        // sendable: a client that reacts to its eviction by querying
        // /statsz must see the eviction already counted.
        self.shared.active_sessions.fetch_sub(1, Ordering::Relaxed);
        if idle {
            self.shared.evictions.fetch_add(1, Ordering::Relaxed);
        }
        state
            .handle
            .outbox
            .push(crate::proto::response_line(&Response::Bye(
                state.handle.summary(evicted),
            )));
        state.handle.outbox.close();
    }

    /// Drain the telemetry rings through the runtime's consumer pipeline
    /// (analyzer, production tick, any registered exporters), then take
    /// the anomaly signals that fired, attribute each to the session
    /// owning its suspected detector thread, and apply the
    /// pathological-client eviction policy.
    ///
    /// Attribution is best-effort evidence ("signals, not truth"): a
    /// suspect thread that no live session owns — or no suspect at all —
    /// leaves `suspected_session` as `None`, and the signal still lands
    /// in the `/statsz` buffer.
    fn observe_telemetry(&mut self) {
        let _ = self.rt.drain();
        let signals = self.rt.kard().take_anomaly_signals();
        if signals.is_empty() {
            return;
        }
        let mut evict: Vec<u64> = Vec::new();
        for mut signal in signals {
            signal.suspected_session = signal.suspected_thread.and_then(|t| {
                self.sessions
                    .iter()
                    .find(|(_, s)| s.thread_names.contains_key(&(t as usize)))
                    .map(|(&serial, _)| serial)
            });
            if let Some(serial) = signal.suspected_session {
                if let Some(state) = self.sessions.get_mut(&serial) {
                    state.anomaly_signals += 1;
                    let over = self
                        .config
                        .anomaly_evict_after
                        .is_some_and(|cap| state.anomaly_signals >= cap);
                    if over && !evict.contains(&serial) {
                        evict.push(serial);
                    }
                }
            }
            let mut buf = self.shared.anomalies.lock().expect("anomaly buffer poisoned");
            if buf.len() >= ANOMALY_KEEP {
                buf.remove(0);
            }
            buf.push(signal);
        }
        for serial in evict {
            self.end_session(serial, true, true);
        }
    }

    /// Evict sessions idle past the configured timeout. Only sessions
    /// with an empty queue budget are eligible — queued work always
    /// lands first.
    fn evict_idle(&mut self) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        let idle: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| {
                s.handle.queued.load(Ordering::Relaxed) == 0
                    && s.last_activity.elapsed() >= timeout
            })
            .map(|(&serial, _)| serial)
            .collect();
        for serial in idle {
            self.end_session(serial, true, true);
        }
    }
}
