//! `kard-server`: a long-running race-detection firehose over the Kard
//! detector.
//!
//! Many client sessions stream [`kard_trace`] event batches at the
//! server as length-prefixed JSON frames (TCP or Unix socket); the
//! server routes each session to a shard by `hash(session) % shards`,
//! applies its events on the shard's own single-threaded detector
//! ([`kard_rt::Session`] + [`kard_core::Kard`]), and streams race
//! reports and telemetry back as JSON-Lines.
//!
//! Design rules, in priority order:
//!
//! 1. **Never wedge the intake.** Per-session ingest budgets are
//!    enforced fail-open: a batch that does not fit is dropped whole and
//!    counted, and the accept/reader loops never wait on a shard.
//! 2. **Shards share nothing.** Each shard owns its detector, machine,
//!    and allocator; there is no cross-shard locking, and a session's
//!    reports depend only on its own traffic.
//! 3. **A client can be wrong, never fatal.** Malformed frames end that
//!    connection; invalid events (unknown tags, cap overflows,
//!    unbalanced locks) are rejected and counted, never panicking a
//!    shard.
//! 4. **Shutdown drains.** The `Shutdown` control request (or
//!    [`Server::shutdown`]) stops intake, applies everything queued, and
//!    delivers every session's pending reports before exit.
//!
//! ```
//! use kard_server::{FirehoseClient, Server, ServerConfig};
//! use kard_trace::{Event, ObjectTag, Op};
//! use kard_sim::CodeSite;
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let addr = server.tcp_addr().unwrap();
//! let mut client = FirehoseClient::connect(addr, "doc-session").unwrap();
//! client.send_batch(&[
//!     Event { thread: 0, op: Op::Alloc { tag: ObjectTag(1), size: 64 } },
//!     Event { thread: 0, op: Op::Write { tag: ObjectTag(1), offset: 0, ip: CodeSite(0x10) } },
//! ]).unwrap();
//! let summary = client.bye().unwrap();
//! assert_eq!(summary.applied, 2);
//! server.shutdown();
//! server.join();
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod proto;
mod server;
mod shard;

pub use client::FirehoseClient;
pub use proto::{
    Request, Response, SessionSummary, ShardStatsz, Statsz, WireRace, WireSide,
};
pub use server::{shard_for, Server, ServerConfig, StatsHandle};
