//! The firehose protocol: request/response message vocabulary.
//!
//! Requests travel client→server as length-prefixed JSON frames
//! ([`kard_trace::wire`]); responses travel server→client as JSON-Lines
//! (one [`Response`] object per line). Events reuse the
//! [`kard_trace::Event`] vocabulary verbatim, so anything that can build
//! a trace can feed the server.
//!
//! Race reports cross the wire in **client vocabulary** ([`WireRace`]):
//! object *tags*, client-local thread indices, and the client's own code
//! sites — never the server's internal object ids, `ThreadId`s, or
//! namespaced section sites. Two runs of the same session therefore
//! produce byte-identical report lines regardless of what other sessions
//! shared the server, which is what the isolation tests assert.

use kard_core::KardSnapshot;
use kard_sim::AccessKind;
use kard_telemetry::{AnomalySignal, HistogramSummary};
use kard_trace::Event;
use serde::{Deserialize, Serialize};

/// A client→server message (one per request frame).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open a session. Must be the first frame on a connection; the
    /// server routes the session to shard `hash(client) % shards`.
    Hello {
        /// Client-chosen session name (the shard-routing key).
        client: String,
    },
    /// One event.
    Event(Event),
    /// A batch of events (the efficient form; readers decode it with the
    /// fast codec).
    Batch(Vec<Event>),
    /// Apply everything accepted so far, then deliver pending race
    /// reports followed by a [`Response::Flushed`] summary.
    Flush,
    /// Return a [`Response::Stats`] snapshot (`/statsz`).
    Stats,
    /// End the session gracefully: drain, deliver pending reports, and
    /// answer with [`Response::Bye`].
    Bye,
    /// Ask the whole server to drain and exit (the SIGTERM-equivalent
    /// control command): accepting stops, every shard applies its queued
    /// events, and every open session receives its pending reports and a
    /// [`Response::Bye`].
    Shutdown,
}

/// A server→client message (one per response line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Session accepted.
    Hello {
        /// Server-assigned session serial.
        session: u64,
        /// Shard the session was routed to.
        shard: usize,
    },
    /// One race report, in client vocabulary.
    Race(WireRace),
    /// Answer to [`Request::Flush`].
    Flushed(SessionSummary),
    /// Answer to [`Request::Stats`].
    Stats(Statsz),
    /// Session ended (answer to [`Request::Bye`], idle eviction, or
    /// server shutdown) — always the last line of a session.
    Bye(SessionSummary),
    /// Protocol failure; the server closes the connection after this.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// One side of a [`WireRace`], in client vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WireSide {
    /// Client-local logical thread index.
    pub thread: usize,
    /// The client's code site of the critical-section entry, or `None`
    /// for an unlocked access.
    pub section: Option<u64>,
    /// The client's code site of the access.
    pub ip: u64,
    /// Byte offset within the object, where known.
    pub offset: Option<u64>,
}

/// A race report in client vocabulary. Deliberately excludes the
/// detector's virtual timestamp and internal ids so that identical
/// session traffic yields byte-identical reports across runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireRace {
    /// The client's tag for the raced object.
    pub object: u64,
    /// Access kind of the faulting side.
    pub access: AccessKind,
    /// The side whose access faulted.
    pub faulting: WireSide,
    /// The side holding the object's protection key.
    pub holding: WireSide,
}

impl WireRace {
    /// Canonical sort key: report batches are sorted by this before
    /// delivery so report order never leaks scheduling noise.
    #[must_use]
    pub fn sort_key(&self) -> (u64, usize, u64, Option<u64>, u8, WireSide) {
        (
            self.object,
            self.faulting.thread,
            self.faulting.ip,
            self.faulting.offset,
            matches!(self.access, AccessKind::Write).into(),
            self.holding,
        )
    }
}

/// Per-session accounting, reported with [`Response::Flushed`] and
/// [`Response::Bye`]. `applied + dropped + rejected` equals the number of
/// events the client sent (once the session is drained), which is how
/// tests prove the drop counters are accurate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Server-assigned session serial.
    pub session: u64,
    /// Events applied to the detector.
    pub applied: u64,
    /// Events dropped fail-open by the bounded ingest queue.
    pub dropped: u64,
    /// Events rejected as invalid (unknown tags, cap overflows,
    /// unbalanced locks) — skipped, never fatal.
    pub rejected: u64,
    /// Race reports delivered to this session so far.
    pub races: u64,
    /// True when the server ended the session (idle eviction or
    /// shutdown) rather than the client.
    pub evicted: bool,
}

/// One shard's `/statsz` block.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStatsz {
    /// Shard index.
    pub shard: usize,
    /// Sessions currently attached.
    pub active_sessions: u64,
    /// Events currently queued (ingest backlog).
    pub queue_depth: u64,
    /// Events applied to the detector.
    pub applied: u64,
    /// Events dropped fail-open at the queue bound.
    pub dropped: u64,
    /// Events rejected as invalid.
    pub rejected: u64,
    /// Race reports delivered.
    pub races: u64,
    /// Sessions evicted for idleness.
    pub evictions: u64,
    /// Queue→apply latency distribution, nanoseconds.
    pub ingest_latency_ns: HistogramSummary,
    /// Detector fault-handling latency distribution, virtual cycles
    /// (all-zero unless the server runs with telemetry enabled).
    pub fault_delay_cycles: HistogramSummary,
    /// Critical-section hold-time distribution, virtual cycles
    /// (all-zero unless the server runs with telemetry enabled).
    pub section_hold_cycles: HistogramSummary,
    /// The shard detector's full snapshot — the same
    /// [`KardSnapshot`] the embedded runtime and `kard-tables
    /// --stats-json` emit, so every stats surface serializes one shape.
    /// Carries the production-mode controller block (all-default unless
    /// the server runs with an
    /// [`overhead_budget`](crate::ServerConfig::overhead_budget)) and
    /// the anomaly-detector block.
    pub detector: KardSnapshot,
    /// Recent anomaly signals, enriched with the suspected session where
    /// the suspected thread maps to one (newest last; bounded, older
    /// signals age out).
    pub anomalies: Vec<AnomalySignal>,
}

/// The `/statsz` snapshot: per-shard blocks plus server totals.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Statsz {
    /// Per-shard blocks, indexed by shard.
    pub shards: Vec<ShardStatsz>,
    /// Queue→apply latency across *all* shards, computed by merging the
    /// per-shard histograms and then taking quantiles. Never an average
    /// of per-shard percentiles — the mean of two shard p99s is not the
    /// p99 of anything.
    pub ingest_latency_ns: HistogramSummary,
    /// Sessions ever accepted.
    pub sessions_total: u64,
    /// Sessions currently attached, across shards.
    pub active_sessions: u64,
    /// Events applied, across shards.
    pub applied: u64,
    /// Events dropped fail-open, across shards.
    pub dropped: u64,
    /// Events rejected as invalid, across shards.
    pub rejected: u64,
    /// Race reports delivered, across shards.
    pub races: u64,
    /// Connections terminated for protocol violations (malformed frames,
    /// missing Hello).
    pub protocol_errors: u64,
}

/// Serialize a response as one JSON line (no trailing newline).
#[must_use]
pub fn response_line(response: &Response) -> String {
    serde_json::to_string(response).expect("responses always serialize")
}

/// Parse one response line.
///
/// # Errors
///
/// Returns the serde error text when the line is not a valid response.
pub fn parse_response(line: &str) -> Result<Response, String> {
    serde_json::from_str(line.trim_end()).map_err(|e| e.to_string())
}

/// Serialize a request frame payload. Batches take the fast-codec path.
#[must_use]
pub fn request_payload(request: &Request) -> String {
    match request {
        Request::Batch(events) => {
            format!("{{\"Batch\":{}}}", kard_trace::wire::encode_batch(events))
        }
        other => serde_json::to_string(other).expect("requests always serialize"),
    }
}

/// Parse a request frame payload. `{"Batch":[...]}` payloads take the
/// fast-codec path; everything else goes through serde.
///
/// # Errors
///
/// Returns a description when the payload is not a valid request.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    let trimmed = text.trim();
    if let Some(rest) = trimmed.strip_prefix("{\"Batch\":") {
        if let Some(array) = rest.strip_suffix('}') {
            if let Ok(events) = kard_trace::wire::decode_batch(array) {
                return Ok(Request::Batch(events));
            }
        }
    }
    serde_json::from_str(trimmed).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kard_trace::{ObjectTag, Op};

    fn batch() -> Vec<Event> {
        vec![
            Event { thread: 0, op: Op::Alloc { tag: ObjectTag(1), size: 64 } },
            Event { thread: 1, op: Op::Compute { cycles: 9 } },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for r in [
            Request::Hello { client: "s-1".into() },
            Request::Event(batch()[0]),
            Request::Batch(batch()),
            Request::Flush,
            Request::Stats,
            Request::Bye,
            Request::Shutdown,
        ] {
            let payload = request_payload(&r);
            assert_eq!(parse_request(payload.as_bytes()).unwrap(), r);
            // The fast batch path emits exactly what serde would.
            assert_eq!(payload, serde_json::to_string(&r).unwrap());
        }
    }

    #[test]
    fn responses_round_trip() {
        let race = WireRace {
            object: 7,
            access: AccessKind::Write,
            faulting: WireSide { thread: 1, section: Some(0xa), ip: 0xa1, offset: Some(8) },
            holding: WireSide { thread: 0, section: Some(0xb), ip: 0xb1, offset: None },
        };
        let mut shard = ShardStatsz::default();
        shard.detector.anomaly.windows = 9;
        shard.anomalies.push(kard_telemetry::AnomalySignal {
            metric: kard_telemetry::MetricKind::KeyPressure,
            window: 9,
            now: 1_000_000,
            value: 420,
            baseline: 20,
            score: 5_000,
            suspected_thread: Some(4),
            suspected_session: Some(7),
        });
        for r in [
            Response::Hello { session: 3, shard: 1 },
            Response::Race(race),
            Response::Flushed(SessionSummary { session: 3, applied: 10, ..Default::default() }),
            Response::Stats(Statsz { shards: vec![shard], ..Default::default() }),
            Response::Bye(SessionSummary { session: 3, evicted: true, ..Default::default() }),
            Response::Error { message: "nope".into() },
        ] {
            assert_eq!(parse_response(&response_line(&r)).unwrap(), r);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [&b""[..], b"[]", b"\"Dance\"", b"{\"Batch\":3}", b"{\"Batch\":[{]}"] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_response("{\"Nope\":1}").is_err());
    }

    #[test]
    fn sort_key_orders_by_object_then_thread() {
        let side = WireSide { thread: 0, section: None, ip: 0, offset: None };
        let a = WireRace { object: 1, access: AccessKind::Read, faulting: side, holding: side };
        let mut b = a.clone();
        b.object = 2;
        assert!(a.sort_key() < b.sort_key());
    }
}
