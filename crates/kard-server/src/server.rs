//! The server front end: listeners, connection threads, shard routing,
//! `/statsz`, and graceful drain.
//!
//! Threading model: one acceptor per listener, one reader thread plus
//! one writer thread per connection, one shard thread per shard. The
//! accept and reader loops never block on a shard — events either fit
//! the session's queue budget and are enqueued, or are dropped and
//! counted (fail-open). The only blocking edges are reader→queue push
//! (a short mutex) and writer→outbox pop, both of which shut down
//! cleanly when the session ends.

use crate::proto::{
    parse_request, response_line, Request, Response, ShardStatsz, Statsz,
};
use crate::shard::{SessionHandle, ShardEngine, ShardShared, Work};
use kard_core::KardConfig;
use kard_telemetry::{merged_summary, Telemetry};
use kard_trace::wire::{read_frame, WireError};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything tunable about a server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of detector shards (one OS thread + one detector each).
    pub shards: usize,
    /// Per-session ingest budget, in events. A batch that would push the
    /// session past this bound is dropped whole and counted.
    pub queue_bound: usize,
    /// Per-session cap on live allocated bytes.
    pub max_session_bytes: u64,
    /// Per-session cap on live objects.
    pub max_session_objects: usize,
    /// Per-session cap on logical threads.
    pub max_session_threads: usize,
    /// Evict sessions idle this long (`None` disables eviction).
    pub idle_timeout: Option<Duration>,
    /// Artificial per-event apply cost, for overload tests and benches
    /// (`Duration::ZERO` disables it).
    pub apply_throttle: Duration,
    /// Detector configuration for every shard. Defaults to the paper
    /// configuration with virtualized keys, so detection quality does
    /// not depend on how many sessions share a shard's key pool.
    pub detector: KardConfig,
    /// Enable fault-path telemetry rings (feeds the `/statsz` cycle
    /// histograms, at some per-event cost).
    pub telemetry: bool,
    /// Run every shard's detector in production mode under this overhead
    /// budget (permille of elapsed virtual cycles; `Some(0)` is a valid,
    /// maximally aggressive budget). `None` leaves production mode off
    /// and the detector exactly as `detector` describes. Setting a budget
    /// forces `telemetry` on, because the controller's overhead
    /// observations come from the cycle histograms.
    pub overhead_budget: Option<u32>,
    /// The pathological-client policy hook: evict a session once this
    /// many anomaly signals have been attributed to it by the drain-side
    /// analyzer. `None` (the default) reports signals in `/statsz` but
    /// never evicts — signals are evidence, not verdicts, so eviction is
    /// strictly opt-in.
    pub anomaly_evict_after: Option<u64>,
    /// TCP listen address (`None` disables TCP). Use port 0 to let the
    /// OS pick; [`Server::tcp_addr`] reports the bound address.
    pub tcp: Option<String>,
    /// Unix socket path (`None` disables the Unix listener). A stale
    /// socket file at the path is removed at startup.
    pub unix: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            queue_bound: 16_384,
            max_session_bytes: 64 << 20,
            max_session_objects: 65_536,
            max_session_threads: 64,
            idle_timeout: Some(Duration::from_secs(60)),
            apply_throttle: Duration::ZERO,
            detector: KardConfig::paper().virtual_keys(true),
            telemetry: false,
            overhead_budget: None,
            anomaly_evict_after: None,
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
        }
    }
}

/// The session shard a client name routes to: `hash(name) % shards`.
/// `DefaultHasher::new()` is keyed with fixed constants, so routing is
/// stable across processes and the tests can place sessions on chosen
/// shards.
#[must_use]
pub fn shard_for(client: &str, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    client.hash(&mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

/// A connection's transport, erased over TCP and Unix sockets.
enum Sock {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-domain transport.
    Unix(UnixStream),
}

impl Sock {
    fn try_clone(&self) -> io::Result<Sock> {
        Ok(match self {
            Sock::Tcp(s) => Sock::Tcp(s.try_clone()?),
            Sock::Unix(s) => Sock::Unix(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Sock::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Sock::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Unix(s) => s.flush(),
        }
    }
}

struct ServerInner {
    config: ServerConfig,
    shards: Vec<Arc<ShardShared>>,
    telemetry: Vec<Arc<Telemetry>>,
    /// Per-shard detector handles, kept so `/statsz` can read the
    /// production-mode controller counters without disturbing the shard.
    detectors: Vec<Arc<kard_core::Kard>>,
    shutdown: AtomicBool,
    next_serial: AtomicU64,
    sessions_total: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServerInner {
    /// Flip the shutdown switch once: accepting stops, every shard
    /// queue closes (drain-then-exit), readers drop late events.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            for shard in &self.shards {
                shard.queue.close();
            }
        }
    }

    fn statsz(&self) -> Statsz {
        let mut out = Statsz {
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            // Merge the per-shard histograms first, then take quantiles:
            // averaging per-shard p99s would manufacture a global "p99"
            // that is not the p99 of anything.
            ingest_latency_ns: merged_summary(
                self.shards.iter().map(|shard| &shard.ingest_latency),
            ),
            ..Statsz::default()
        };
        for (i, shard) in self.shards.iter().enumerate() {
            let hists = self.telemetry[i].histograms();
            let block = ShardStatsz {
                shard: i,
                active_sessions: shard.active_sessions.load(Ordering::Relaxed),
                queue_depth: shard.queue_depth.load(Ordering::Relaxed),
                applied: shard.applied.load(Ordering::Relaxed),
                dropped: shard.dropped.load(Ordering::Relaxed),
                rejected: shard.rejected.load(Ordering::Relaxed),
                races: shard.races.load(Ordering::Relaxed),
                evictions: shard.evictions.load(Ordering::Relaxed),
                ingest_latency_ns: shard.ingest_latency.summary(),
                fault_delay_cycles: hists.fault_delay.summary(),
                section_hold_cycles: hists.section_hold.summary(),
                detector: self.detectors[i].snapshot(),
                anomalies: shard
                    .anomalies
                    .lock()
                    .expect("anomaly buffer poisoned")
                    .clone(),
            };
            out.active_sessions += block.active_sessions;
            out.applied += block.applied;
            out.dropped += block.dropped;
            out.rejected += block.rejected;
            out.races += block.races;
            out.shards.push(block);
        }
        out
    }
}

/// A running firehose server. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] (or send a [`Request::Shutdown`])
/// and then [`Server::join`].
pub struct Server {
    inner: Arc<ServerInner>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    threads: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind the configured listeners, spawn the shard threads, and start
    /// accepting sessions.
    ///
    /// # Errors
    ///
    /// Returns the bind error when a listener address is unusable.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let shards: Vec<Arc<ShardShared>> = (0..config.shards.max(1))
            .map(|_| Arc::new(ShardShared::default()))
            .collect();
        let mut telemetry = Vec::with_capacity(shards.len());
        let mut detectors = Vec::with_capacity(shards.len());
        let mut threads = Vec::new();
        for shared in &shards {
            let mut builder = kard_rt::Session::builder()
                .config(config.detector)
                .telemetry(config.telemetry);
            if let Some(budget) = config.overhead_budget {
                builder = builder.production(Some(budget));
            }
            let rt = builder.build();
            telemetry.push(Arc::clone(rt.telemetry()));
            detectors.push(Arc::clone(rt.kard()));
            let engine = ShardEngine::new(rt, Arc::clone(shared), config.clone());
            threads.push(std::thread::spawn(move || engine.run()));
        }
        let inner = Arc::new(ServerInner {
            config,
            shards,
            telemetry,
            detectors,
            shutdown: AtomicBool::new(false),
            next_serial: AtomicU64::new(1),
            sessions_total: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut tcp_addr = None;
        if let Some(addr) = inner.config.tcp.clone() {
            let listener = TcpListener::bind(&addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let inner2 = Arc::clone(&inner);
            let conns2 = Arc::clone(&conns);
            threads.push(std::thread::spawn(move || {
                accept_loop(&inner2, &conns2, || {
                    listener.accept().map(|(s, _)| {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_nonblocking(false);
                        Sock::Tcp(s)
                    })
                });
            }));
        }
        let mut unix_path = None;
        if let Some(path) = inner.config.unix.clone() {
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path);
            let inner2 = Arc::clone(&inner);
            let conns2 = Arc::clone(&conns);
            threads.push(std::thread::spawn(move || {
                accept_loop(&inner2, &conns2, || {
                    listener.accept().map(|(s, _)| {
                        let _ = s.set_nonblocking(false);
                        Sock::Unix(s)
                    })
                });
            }));
        }

        Ok(Server {
            inner,
            tcp_addr,
            unix_path,
            threads,
            conns,
        })
    }

    /// The bound TCP address, when TCP is enabled.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path, when the Unix listener is enabled.
    #[must_use]
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// A `/statsz` snapshot, taken without disturbing the shards.
    #[must_use]
    pub fn statsz(&self) -> Statsz {
        self.inner.statsz()
    }

    /// A detachable stats handle, usable from other threads while
    /// [`Server::join`] consumes the server itself.
    #[must_use]
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Begin graceful drain: stop accepting, close the shard queues,
    /// flush and end every session. Equivalent to a client sending
    /// [`Request::Shutdown`].
    pub fn shutdown(&self) {
        self.inner.trigger_shutdown();
    }

    /// Wait for the drain to finish: blocks until shutdown is triggered
    /// (by [`Server::shutdown`] or a client), then joins every shard,
    /// acceptor, and connection thread.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        // Acceptors are down; no new connection threads can appear.
        let pending = std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for t in pending {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A cloneable view of a running server's counters: `/statsz` snapshots
/// and the drain switch, without ownership of the server.
#[derive(Clone)]
pub struct StatsHandle {
    inner: Arc<ServerInner>,
}

impl StatsHandle {
    /// A `/statsz` snapshot.
    #[must_use]
    pub fn statsz(&self) -> Statsz {
        self.inner.statsz()
    }

    /// True once the server has begun draining.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }
}

/// Poll one nonblocking listener until shutdown, spawning a connection
/// thread per accepted socket.
fn accept_loop<F>(inner: &Arc<ServerInner>, conns: &Arc<Mutex<Vec<JoinHandle<()>>>>, mut accept: F)
where
    F: FnMut() -> io::Result<Sock>,
{
    while !inner.shutdown.load(Ordering::SeqCst) {
        match accept() {
            Ok(sock) => {
                let inner2 = Arc::clone(inner);
                let handle = std::thread::spawn(move || serve_connection(&inner2, sock));
                conns.lock().expect("conn registry poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Write one response line straight to a socket (pre-session errors
/// only; everything after Hello goes through the outbox).
fn write_direct(sock: &Sock, response: &Response) {
    if let Ok(mut w) = sock.try_clone() {
        let mut line = response_line(response);
        line.push('\n');
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// The reader side of one connection: frames in, work items out.
fn serve_connection(inner: &Arc<ServerInner>, sock: Sock) {
    let Ok(read_half) = sock.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);

    // The first frame must be Hello; anything else is a protocol error.
    let client = match read_frame(&mut reader) {
        Ok(Some(payload)) => match parse_request(&payload) {
            Ok(Request::Hello { client }) => client,
            Ok(Request::Shutdown) => {
                inner.trigger_shutdown();
                return;
            }
            Ok(Request::Stats) => {
                write_direct(&sock, &Response::Stats(inner.statsz()));
                return;
            }
            Ok(_) => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                write_direct(
                    &sock,
                    &Response::Error {
                        message: "expected Hello as the first request".to_string(),
                    },
                );
                return;
            }
            Err(why) => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                write_direct(&sock, &Response::Error { message: why });
                return;
            }
        },
        Ok(None) | Err(_) => return,
    };

    if inner.shutdown.load(Ordering::SeqCst) {
        write_direct(
            &sock,
            &Response::Error {
                message: "server is draining".to_string(),
            },
        );
        return;
    }

    let serial = inner.next_serial.fetch_add(1, Ordering::Relaxed);
    inner.sessions_total.fetch_add(1, Ordering::Relaxed);
    let shard_index = shard_for(&client, inner.config.shards);
    let shard = Arc::clone(&inner.shards[shard_index]);
    let handle = Arc::new(SessionHandle::new(serial));
    handle.outbox.push(response_line(&Response::Hello {
        session: serial,
        shard: shard_index,
    }));
    shard.queue.push(Work::Attach(Arc::clone(&handle)));

    // The writer owns the socket from here: it drains the outbox and
    // shuts the socket down once the session ends, which is also what
    // unblocks this reader if it is parked in `read_frame`.
    let writer = {
        let handle = Arc::clone(&handle);
        std::thread::spawn(move || {
            let mut w = BufWriter::new(match sock.try_clone() {
                Ok(s) => s,
                Err(_) => {
                    sock.shutdown();
                    return;
                }
            });
            while let Some(mut line) = handle.outbox.pop() {
                line.push('\n');
                if w.write_all(line.as_bytes()).is_err() {
                    break;
                }
                if w.flush().is_err() {
                    break;
                }
            }
            let _ = w.flush();
            sock.shutdown();
        })
    };

    let mut detach_sent = false;
    loop {
        if handle.done.load(Ordering::Acquire) {
            break;
        }
        match read_frame(&mut reader) {
            Ok(Some(payload)) => match parse_request(&payload) {
                Ok(Request::Event(event)) => {
                    enqueue_events(inner, &shard, &handle, vec![event]);
                }
                Ok(Request::Batch(events)) => enqueue_events(inner, &shard, &handle, events),
                Ok(Request::Flush) => shard.queue.push(Work::Flush { session: serial }),
                Ok(Request::Stats) => {
                    handle
                        .outbox
                        .push(response_line(&Response::Stats(inner.statsz())));
                }
                Ok(Request::Bye) => {
                    shard.queue.push(Work::Detach { session: serial });
                    detach_sent = true;
                    break;
                }
                Ok(Request::Shutdown) => inner.trigger_shutdown(),
                Ok(Request::Hello { .. }) => {
                    inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    handle.outbox.push(response_line(&Response::Error {
                        message: "session already established".to_string(),
                    }));
                    break;
                }
                Err(why) => {
                    inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    handle
                        .outbox
                        .push(response_line(&Response::Error { message: why }));
                    break;
                }
            },
            Ok(None) => break,
            Err(WireError::Oversize { len }) => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                handle.outbox.push(response_line(&Response::Error {
                    message: format!("frame of {len} bytes exceeds the frame limit"),
                }));
                break;
            }
            Err(_) => break,
        }
    }
    if !detach_sent && !handle.done.load(Ordering::Acquire) {
        shard.queue.push(Work::Detach { session: serial });
    }
    let _ = writer.join();
}

/// Enqueue a batch within the session's queue budget, or drop it whole
/// and count it (fail-open — the reader never blocks on a full shard).
fn enqueue_events(
    inner: &Arc<ServerInner>,
    shard: &Arc<ShardShared>,
    handle: &Arc<SessionHandle>,
    events: Vec<kard_trace::Event>,
) {
    let n = events.len() as u64;
    if n == 0 {
        return;
    }
    if inner.shutdown.load(Ordering::SeqCst)
        || handle.done.load(Ordering::Acquire)
        || handle.queued.load(Ordering::Relaxed) + n > inner.config.queue_bound as u64
    {
        handle.dropped.fetch_add(n, Ordering::Relaxed);
        shard.dropped.fetch_add(n, Ordering::Relaxed);
        return;
    }
    handle.queued.fetch_add(n, Ordering::Relaxed);
    shard.queue_depth.fetch_add(n, Ordering::Relaxed);
    shard.queue.push(Work::Events {
        session: handle.serial,
        events,
        enqueued: Instant::now(),
    });
}
