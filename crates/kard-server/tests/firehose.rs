//! End-to-end tests of the firehose server over real sockets.

use kard_server::{shard_for, FirehoseClient, Server, ServerConfig};
use kard_sim::CodeSite;
use kard_trace::{Event, ObjectTag, Op};
use kard_workloads::storm::{self, StormConfig};
use std::time::Duration;

fn start(config: ServerConfig) -> Server {
    Server::start(config).expect("server starts")
}

fn racy_storm() -> StormConfig {
    StormConfig {
        racy_sessions: 1,
        ..StormConfig::default()
    }
}

/// Replay one storm session through a connected client, flushing after
/// every burst, and return the final summary.
fn play(
    client: &mut FirehoseClient,
    session: &storm::StormSession,
) -> kard_server::SessionSummary {
    for burst in &session.bursts {
        client.send_batch(burst).expect("batch sends");
    }
    client.flush().expect("flush answers")
}

#[test]
fn racy_session_reports_in_client_vocabulary() {
    let server = start(ServerConfig::default());
    let addr = server.tcp_addr().unwrap();
    let session = storm::session(&racy_storm(), 0);

    let mut client = FirehoseClient::connect(addr, &session.name).unwrap();
    let summary = play(&mut client, &session);
    assert_eq!(summary.applied, session.total_events() as u64);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.rejected, 0);
    assert_eq!(summary.races, 1);

    let races = client.races();
    assert_eq!(races.len(), 1);
    let race = &races[0];
    // The report speaks the client's vocabulary: the storm's shared
    // object tag (threads * objects_per_thread) and the storm's own lock
    // sites, not the server's namespaced ids.
    assert_eq!(race.object, 8, "shared object tag");
    for side in [&race.faulting, &race.holding] {
        assert!(side.thread < 2, "client thread index: {}", side.thread);
        let section = side.section.expect("both sides are locked");
        assert!(
            section == 0xaaa0 || section == 0xbbb0,
            "client lock site: {section:#x}"
        );
    }
    assert_ne!(race.faulting.section, race.holding.section);

    let final_summary = client.bye().unwrap();
    assert_eq!(final_summary.races, 1);
    assert!(!final_summary.evicted);
    server.shutdown();
    server.join();
}

#[test]
fn identical_traffic_yields_byte_identical_reports() {
    // Two servers, one busy with extra sessions — the observed session's
    // report lines must match byte for byte.
    let cfg = StormConfig {
        sessions: 3,
        racy_sessions: 3,
        ..StormConfig::default()
    };
    let sessions = storm::sessions(&cfg);
    let observed = &sessions[0];

    let mut runs = Vec::new();
    for busy in [false, true] {
        let server = start(ServerConfig {
            shards: 2,
            ..ServerConfig::default()
        });
        let addr = server.tcp_addr().unwrap();
        if busy {
            for other in &sessions[1..] {
                let mut c = FirehoseClient::connect(addr, &other.name).unwrap();
                play(&mut c, other);
                c.bye().unwrap();
            }
        }
        let mut client = FirehoseClient::connect(addr, &observed.name).unwrap();
        let summary = play(&mut client, observed);
        assert_eq!(summary.races, 1);
        runs.push(client.race_lines().to_vec());
        client.bye().unwrap();
        server.shutdown();
        server.join();
    }
    assert_eq!(runs[0], runs[1], "report lines must not depend on load");
}

#[test]
fn invalid_events_are_rejected_never_fatal() {
    let server = start(ServerConfig::default());
    let addr = server.tcp_addr().unwrap();
    let mut client = FirehoseClient::connect(addr, "hostile").unwrap();

    let bad = vec![
        // Access to a tag that was never allocated.
        Event { thread: 0, op: Op::Write { tag: ObjectTag(9), offset: 0, ip: CodeSite(1) } },
        // Unlock of a lock that is not held.
        Event { thread: 0, op: Op::Unlock { lock: kard_core::LockId(5) } },
        // Allocation far beyond the per-session memory cap.
        Event { thread: 0, op: Op::Alloc { tag: ObjectTag(1), size: u64::MAX / 2 } },
        // Zero-size allocation.
        Event { thread: 0, op: Op::Alloc { tag: ObjectTag(2), size: 0 } },
        // Free of an unknown tag.
        Event { thread: 0, op: Op::Free { tag: ObjectTag(3) } },
    ];
    client.send_batch(&bad).unwrap();
    let summary = client.flush().unwrap();
    assert_eq!(summary.rejected, bad.len() as u64);
    assert_eq!(summary.applied, 0);

    // The session still works after every rejection.
    client
        .send_batch(&[
            Event { thread: 0, op: Op::Alloc { tag: ObjectTag(1), size: 64 } },
            Event { thread: 0, op: Op::Write { tag: ObjectTag(1), offset: 0, ip: CodeSite(2) } },
        ])
        .unwrap();
    let summary = client.bye().unwrap();
    assert_eq!(summary.applied, 2);
    server.shutdown();
    server.join();
}

#[test]
fn out_of_bounds_offsets_are_rejected() {
    let server = start(ServerConfig::default());
    let addr = server.tcp_addr().unwrap();
    let mut client = FirehoseClient::connect(addr, "bounds").unwrap();
    client
        .send_batch(&[
            Event { thread: 0, op: Op::Alloc { tag: ObjectTag(1), size: 64 } },
            Event { thread: 0, op: Op::Read { tag: ObjectTag(1), offset: 1 << 40, ip: CodeSite(3) } },
        ])
        .unwrap();
    let summary = client.bye().unwrap();
    assert_eq!(summary.applied, 1);
    assert_eq!(summary.rejected, 1);
    server.shutdown();
    server.join();
}

#[test]
fn malformed_frames_end_the_connection_with_an_error() {
    let server = start(ServerConfig::default());
    let addr = server.tcp_addr().unwrap();

    let mut client = FirehoseClient::connect(addr, "soon-broken").unwrap();
    client.send_payload("this is not json").unwrap();
    // The server answers Error and closes; the next blocking read sees it.
    let err = client.flush().unwrap_err();
    assert!(
        err.kind() == std::io::ErrorKind::InvalidData
            || err.kind() == std::io::ErrorKind::UnexpectedEof
            || err.kind() == std::io::ErrorKind::BrokenPipe,
        "unexpected error kind: {err:?}"
    );

    // The server itself is unharmed and counted the violation.
    let mut probe = FirehoseClient::connect(addr, "probe").unwrap();
    let stats = probe.stats().unwrap();
    assert_eq!(stats.protocol_errors, 1);
    probe.bye().unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn idle_sessions_are_evicted_with_reports_flushed() {
    let server = start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(120)),
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();
    let session = storm::session(&racy_storm(), 0);
    let mut client = FirehoseClient::connect(addr, &session.name).unwrap();
    for burst in &session.bursts {
        client.send_batch(burst).unwrap();
    }
    // No Flush, no Bye: the eviction must deliver the pending report.
    let summary = client.wait_bye().expect("server ends the idle session");
    assert!(summary.evicted);
    assert_eq!(summary.applied, session.total_events() as u64);
    assert_eq!(summary.races, 1);
    assert_eq!(client.races().len(), 1);

    let mut probe = FirehoseClient::connect(addr, "probe").unwrap();
    let stats = probe.stats().unwrap();
    let evictions: u64 = stats.shards.iter().map(|s| s.evictions).sum();
    assert_eq!(evictions, 1);
    probe.bye().unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn unix_socket_transport_works() {
    let path = std::env::temp_dir().join(format!("kard-firehose-test-{}.sock", std::process::id()));
    let server = start(ServerConfig {
        tcp: None,
        unix: Some(path.clone()),
        ..ServerConfig::default()
    });
    assert_eq!(server.unix_path(), Some(path.as_path()));
    let session = storm::session(&racy_storm(), 0);
    let mut client = FirehoseClient::connect_unix(&path, &session.name).unwrap();
    let summary = play(&mut client, &session);
    assert_eq!(summary.races, 1);
    client.bye().unwrap();
    server.shutdown();
    server.join();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn shutdown_drains_queued_work_and_flushes_every_session() {
    let cfg = StormConfig {
        sessions: 4,
        racy_sessions: 4,
        ..StormConfig::default()
    };
    let server = start(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();
    let sessions = storm::sessions(&cfg);
    let mut clients = Vec::new();
    for session in &sessions {
        let mut client = FirehoseClient::connect(addr, &session.name).unwrap();
        for burst in &session.bursts {
            client.send_batch(burst).unwrap();
        }
        clients.push(client);
    }
    // An in-order Stats round trip per connection proves every batch
    // frame was consumed (enqueued) before we pull the plug.
    for client in &mut clients {
        client.stats().unwrap();
    }
    clients[0].shutdown_server().unwrap();
    for (client, session) in clients.iter_mut().zip(&sessions) {
        let summary = client.wait_bye().expect("drain delivers Bye");
        assert!(summary.evicted, "server-initiated end");
        assert_eq!(summary.applied, session.total_events() as u64, "{}", session.name);
        assert_eq!(summary.dropped, 0);
        assert_eq!(summary.races, 1, "{}", session.name);
    }
    server.join();
}

#[test]
fn statsz_aggregates_match_session_counters() {
    let server = start(ServerConfig {
        shards: 3,
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();
    let session = storm::session(&StormConfig::default(), 0);
    let mut client = FirehoseClient::connect(addr, &session.name).unwrap();
    assert_eq!(client.shard(), shard_for(&session.name, 3));
    let summary = play(&mut client, &session);

    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 3);
    assert_eq!(stats.sessions_total, 1);
    assert_eq!(stats.active_sessions, 1);
    assert_eq!(stats.applied, summary.applied);
    let shard = &stats.shards[client.shard()];
    assert_eq!(shard.applied, summary.applied);
    assert!(shard.ingest_latency_ns.count > 0, "latency was recorded");
    assert!(
        !shard.detector.production.enabled,
        "production mode off unless a budget is configured"
    );
    // Satellite: the global ingest-latency block merges the per-shard
    // histograms (count is additive; quantiles come from the merged
    // distribution, never from averaging per-shard percentiles).
    let merged_count: u64 = stats.shards.iter().map(|s| s.ingest_latency_ns.count).sum();
    assert_eq!(stats.ingest_latency_ns.count, merged_count);
    assert!(
        stats
            .shards
            .iter()
            .all(|s| s.ingest_latency_ns.max <= stats.ingest_latency_ns.max),
        "merged max dominates every shard max"
    );
    client.bye().unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn overhead_budget_knob_surfaces_controller_state_in_statsz() {
    // A generous budget (100% of elapsed cycles) never narrows the
    // sample, so detection is untouched — the racy session still reports
    // its race — while `/statsz` exposes the controller's counters.
    let server = start(ServerConfig {
        overhead_budget: Some(1000),
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();
    let session = storm::session(&racy_storm(), 0);
    let mut client = FirehoseClient::connect(addr, &session.name).unwrap();
    let summary = play(&mut client, &session);
    assert_eq!(summary.races, 1, "full-width sampling keeps detection");

    let stats = client.stats().unwrap();
    let shard = &stats.shards[client.shard()];
    let production = &shard.detector.production;
    assert!(production.enabled, "budget knob turns the controller on");
    assert_eq!(production.budget_permille, Some(1000));
    assert!(production.sampled_objects > 0, "decisions were counted");
    assert_eq!(production.skipped_objects, 0, "nothing skipped");
    assert_eq!(
        production.estimated_detection_permille, 1000,
        "estimated detection stays at 100%"
    );
    assert!(
        shard.fault_delay_cycles.count > 0,
        "budget knob forces telemetry on"
    );
    client.bye().unwrap();
    server.shutdown();
    server.join();
}

/// A fault storm in client vocabulary: thread 0 claims a pile of objects
/// under lock A, then thread 1 writes every one under lock B, so each of
/// thread 1's accesses faults (and reports an ILU race).
fn fault_storm_burst(objects: u64) -> Vec<Event> {
    let mut events = Vec::new();
    for tag in 0..objects {
        events.push(Event { thread: 0, op: Op::Alloc { tag: ObjectTag(tag), size: 64 } });
    }
    events.push(Event {
        thread: 0,
        op: Op::Lock { lock: kard_core::LockId(1), site: CodeSite(0xaaa0) },
    });
    for tag in 0..objects {
        events.push(Event {
            thread: 0,
            op: Op::Write { tag: ObjectTag(tag), offset: 0, ip: CodeSite(0x100) },
        });
    }
    events.push(Event { thread: 0, op: Op::Unlock { lock: kard_core::LockId(1) } });
    events.push(Event {
        thread: 1,
        op: Op::Lock { lock: kard_core::LockId(2), site: CodeSite(0xbbb0) },
    });
    for tag in 0..objects {
        events.push(Event {
            thread: 1,
            op: Op::Write { tag: ObjectTag(tag), offset: 0, ip: CodeSite(0x200) },
        });
    }
    events.push(Event { thread: 1, op: Op::Unlock { lock: kard_core::LockId(2) } });
    events
}

#[test]
fn anomaly_signals_attribute_sessions_and_evict_pathological_clients() {
    // Aggressive analyzer knobs so one fault storm fires within a window
    // or two, plus the opt-in eviction policy at its tightest.
    let analyzer = kard_core::AnalyzerConfig {
        warmup_windows: 1,
        cusum_threshold_permille: 100,
        cusum_slack_permille: 0,
        min_baseline: 1,
        ..Default::default()
    };
    let server = start(ServerConfig {
        shards: 1,
        telemetry: true,
        detector: kard_core::KardConfig::paper().virtual_keys(true).anomaly(analyzer),
        anomaly_evict_after: Some(1),
        ..ServerConfig::default()
    });
    let addr = server.tcp_addr().unwrap();
    let mut observer = FirehoseClient::connect(addr, "observer").unwrap();
    let mut storm = FirehoseClient::connect(addr, "storm").unwrap();
    let storm_session = storm.session();

    // Let the warmup window(s) pass while the shard is quiet, so the
    // baselines learn "nothing happening".
    std::thread::sleep(Duration::from_millis(80));
    storm.send_batch(&fault_storm_burst(64)).unwrap();

    // The drain-side analyzer flags the storm, attribution maps the
    // suspect thread back to the storm session, and the policy hook
    // evicts it — the client just sees a server-initiated Bye.
    let summary = storm.wait_bye().expect("pathological session is evicted");
    assert!(summary.evicted, "server-initiated end");

    let stats = observer.stats().unwrap();
    let shard = &stats.shards[0];
    assert!(shard.detector.anomaly.signals > 0, "the analyzer fired");
    let attributed = shard
        .anomalies
        .iter()
        .find(|s| s.suspected_session == Some(storm_session))
        .expect("a signal names the storm session");
    assert!(attributed.value > attributed.baseline, "excess over baseline");
    assert!(shard.evictions > 0, "the policy hook counted an eviction");

    observer.bye().unwrap();
    server.shutdown();
    server.join();
}
