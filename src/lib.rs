//! # Kard — lightweight data race detection with per-thread memory protection
//!
//! A from-scratch Rust reproduction of *"Kard: Lightweight Data Race
//! Detection with Per-Thread Memory Protection"* (Ahmad, Lee, Fonseca, Lee —
//! ASPLOS 2021), including every substrate the paper depends on:
//!
//! * [`sim`] — a software model of Intel MPK (per-thread PKRU, 16
//!   protection keys, `pkey_mprotect`, simulated #GP faults), virtual
//!   memory with Linux-style RSS accounting, a set-associative dTLB, and a
//!   documented cycle-cost model;
//! * [`alloc`] — the consolidated unique-page allocator (§5.3, Figure 2):
//!   one virtual page per object, shared physical frames, 32 B granules;
//! * [`core`] — the detector: the pure Algorithm 1 plus the full MPK
//!   realization (protection domains, section-object and key-section maps,
//!   effective key assignment, proactive/reactive acquisition, the fault
//!   handler with timestamp filtering, protection interleaving, and
//!   automated pruning);
//! * [`rt`] — the runtime API a monitored program uses ([`Session`],
//!   [`SimThread`], [`KardMutex`]) and the trace-executor adapter;
//! * [`telemetry`] — lock-free event tracing of the fault path:
//!   per-thread bounded rings, log₂ latency histograms, and JSON-Lines /
//!   Chrome `trace_event` exporters (see DESIGN.md §5d);
//! * [`trace`] — deterministic program traces and interleaving schedules;
//! * [`baselines`] — FastTrack (the TSan model) and Eraser lockset;
//! * [`server`] — the `kard-server` firehose daemon: sharded concurrent
//!   sessions streaming trace events over TCP/Unix sockets, with race
//!   reports and `/statsz` telemetry streamed back as JSON-Lines;
//! * [`workloads`] — models of the paper's 19 evaluation programs
//!   (Table 3) and the four real applications with their documented races
//!   (Table 6).
//!
//! The `kard-bench` crate regenerates every table and figure of the
//! paper's evaluation; see EXPERIMENTS.md for paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use kard::{Session, CodeSite};
//!
//! let session = Session::new();
//! let t1 = session.spawn_thread();
//! let t2 = session.spawn_thread();
//! let lock_a = session.new_mutex();
//! let lock_b = session.new_mutex();
//! let counter = t1.alloc(8);
//!
//! // Two threads update one counter under *different* locks, with the
//! // critical sections overlapping: inconsistent lock usage.
//! let guard_a = t1.enter(&lock_a, CodeSite(0x100));
//! t1.write(&counter, 0, CodeSite(0x101));
//! let guard_b = t2.enter(&lock_b, CodeSite(0x200));
//! t2.write(&counter, 0, CodeSite(0x201));
//! drop(guard_b);
//! drop(guard_a);
//!
//! let reports = session.kard().reports();
//! assert_eq!(reports.len(), 1);
//! println!("{}", reports[0]);
//! ```

#![warn(missing_docs)]

pub use kard_alloc as alloc;
pub use kard_baselines as baselines;
pub use kard_core as core;
pub use kard_rt as rt;
pub use kard_server as server;
pub use kard_sim as sim;
pub use kard_telemetry as telemetry;
pub use kard_trace as trace;
pub use kard_workloads as workloads;

pub use kard_alloc::{ObjectId, ObjectInfo};
pub use kard_core::{
    FaultShardStats, Kard, KardConfig, KardError, KardSnapshot, LockId, RaceRecord, SectionId,
};
pub use kard_rt::{KardExecutor, KardMutex, Session, SessionBuilder, SimThread};
pub use kard_sim::{CodeSite, Machine, MachineConfig, ProtectionKey, ThreadId};

/// The names most programs need, importable in one line:
/// `use kard::prelude::*;`.
///
/// Covers session assembly ([`Session`], [`SessionBuilder`],
/// [`KardConfig`], [`MachineConfig`]), the thread-side API
/// ([`SimThread`], [`KardMutex`], [`CodeSite`]), and the result surface
/// ([`KardSnapshot`], [`KardError`], [`RaceRecord`]).
pub mod prelude {
    pub use kard_core::{KardConfig, KardError, KardSnapshot, RaceRecord};
    pub use kard_rt::{KardMutex, Session, SessionBuilder, SimThread};
    pub use kard_sim::{CodeSite, MachineConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compile_together() {
        let session = crate::Session::new();
        let t = session.spawn_thread();
        let o = t.alloc(32);
        assert!(session.alloc().object(o.id).is_some());
    }
}
