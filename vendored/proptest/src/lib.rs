//! Minimal vendored stand-in for `proptest` (offline build).
//!
//! Implements the slice of the proptest 1.x API this workspace's property
//! tests use: `Strategy` with `prop_map`/`boxed`, integer-range and tuple
//! strategies, `Just`, `any::<T>()`, `prop::collection::vec`,
//! `prop_oneof!` (weighted and unweighted), and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from a
//! deterministic per-case RNG; there is NO shrinking — a failing case
//! panics with its generated inputs so it can be reproduced by eye.

#![warn(missing_docs)]

use std::ops::Range;
use std::rc::Rc;

/// Deterministic per-case random source (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one numbered test case (stable across runs).
    #[must_use]
    pub fn from_case(case: u64) -> TestRng {
        TestRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635_aef7_89c6,
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Erase the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Types with a canonical uniform strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Canonical strategy for `T` (`any::<bool>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy produced by [`any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted choice among type-erased strategies ([`prop_oneof!`]).
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs (weights must sum > 0).
    #[must_use]
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = choices.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { choices, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.choices {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::from_case(case);
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                )+
                // Render inputs up front: the body may consume them.
                let __inputs = format!("{:?}", ($(&$arg,)+));
                let outcome: ::std::result::Result<(), String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {case} failed: {message}\n  inputs: {__inputs}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        Small(u64),
        Pair(u64, u8),
        Pad,
    }

    fn kind_strategy() -> impl Strategy<Value = Kind> {
        prop_oneof![
            2 => (0..10u64).prop_map(Kind::Small),
            2 => (0..10u64, 0..4u8).prop_map(|(a, b)| Kind::Pair(a, b)),
            1 => Just(Kind::Pad),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, flag in any::<bool>()) {
            prop_assert!(x >= 3 && x < 17, "x out of range: {}", x);
            let _ = flag;
        }

        #[test]
        fn vec_sizes_respected(
            items in prop::collection::vec(kind_strategy(), 2..6),
            exact in prop::collection::vec(0..5u64, 4),
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 6);
            prop_assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let strat = kind_strategy();
        let a = strat.generate(&mut TestRng::from_case(5));
        let b = strat.generate(&mut TestRng::from_case(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0u64..1) {
                prop_assert!(x > 10);
            }
        }
        inner();
    }
}
