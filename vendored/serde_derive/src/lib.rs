//! Minimal vendored `serde_derive` (offline build): derives the sibling
//! `serde` stand-in's `Serialize`/`Deserialize` traits (which route through
//! one dynamic `Value` tree rather than serde's visitor model).
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * named-field structs (→ JSON object)
//! * one-field tuple structs (→ the inner value, newtype style)
//! * enums with unit variants (→ the variant name as a string)
//! * enums with named-field or tuple variants (→ externally tagged object,
//!   `{"Variant": ...}`)
//!
//! Generic types, `#[serde(...)]` attributes, and unions are not supported
//! and fail loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

enum Shape {
    /// `struct S { a: T, b: U }` — field names in order.
    NamedStruct(Vec<String>),
    /// `struct S(T);`
    NewtypeStruct,
    /// `enum E { ... }` — variants with their field shape.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip a `#[...]` attribute if the iterator is positioned at its `#`.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute brackets after '#', got {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_vis(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                assert!(
                    n == 1,
                    "vendored serde_derive supports only 1-field tuple structs; \
                     `{name}` has {n}"
                );
                Shape::NewtypeStruct
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("vendored serde_derive cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Field names of a named-field body: the ident directly before each
/// top-level `:`. Commas inside generic arguments are skipped by tracking
/// angle-bracket depth (delimited groups arrive as single tokens, so only
/// `<`/`>` need counting).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_vis(&mut tokens);
        let field = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{field}`, got {other:?}"),
        }
        fields.push(field);
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Number of fields in a tuple body (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in stream {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        return 0;
    }
    commas + 1
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let name = match tt {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected variant name in `{enum_name}`, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.peek() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        tokens.next();
                        break;
                    }
                    _ => {}
                }
            }
            tokens.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut b = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            b.push_str("::serde::Value::Object(m)");
            b
        }
        Shape::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let binders = fields.join(", ");
                        let mut inner = String::from("let mut m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "m.insert(\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => {{\n{inner}\
                             let mut outer = ::serde::Map::new();\n\
                             outer.insert(\"{vn}\".to_string(), ::serde::Value::Object(m));\n\
                             ::serde::Value::Object(outer)\n}}\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                        let pat = binders.join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(v0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({pat}) => {{\n\
                             let mut outer = ::serde::Map::new();\n\
                             outer.insert(\"{vn}\".to_string(), {inner});\n\
                             ::serde::Value::Object(outer)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut b = format!(
                "let m = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(m.get(\"{f}\").ok_or_else(|| \
                     ::serde::Error::custom(\"missing field `{f}` in {name}\"))?)?,\n"
                ));
            }
            b.push_str("})");
            b
        }
        Shape::NewtypeStruct => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let mut inner = format!(
                            "let fm = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(fm.get(\"{f}\")\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"missing field `{f}` in {name}::{vn}\"))?)?,\n"
                            ));
                        }
                        inner.push_str("})");
                        data_arms.push_str(&format!("\"{vn}\" => {{\n{inner}\n}}\n"));
                    }
                    VariantFields::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "\"{vn}\" => Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(inner)?)),\n"
                            ));
                        } else {
                            let mut inner = format!(
                                "let a = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                 if a.len() != {n} {{ return Err(::serde::Error::custom(\
                                 \"wrong arity for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}(\n"
                            );
                            for i in 0..*n {
                                inner.push_str(&format!(
                                    "::serde::Deserialize::from_value(&a[{i}])?,\n"
                                ));
                            }
                            inner.push_str("))");
                            data_arms.push_str(&format!("\"{vn}\" => {{\n{inner}\n}}\n"));
                        }
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(m) => {{\n\
                 let (tag, inner) = m.iter().next().ok_or_else(|| \
                 ::serde::Error::custom(\"empty variant object for {name}\"))?;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::custom(\"expected string or object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<{name}, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
