//! Minimal vendored stand-in for `serde_json` (offline build).
//!
//! Serializes the sibling `serde` stand-in's [`Value`] tree to JSON text and
//! parses JSON text back. Covers the workspace's needs: `to_string`,
//! `to_string_pretty`, `to_value`, `from_str`, plus the `Value`/`Map`/
//! `Error`/`Result` names.

#![warn(missing_docs)]

use std::fmt::Write as _;

pub use serde::{Error, Map, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serialize a value to compact JSON text.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable JSON text (two-space indent).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser { input: s.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` keeps a fractional part (1.0 → "1.0") and round-trips.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by this crate's
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unsupported \\u escape"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character (multi-byte safe).
                    let rest = &self.input[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii number text");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::I64(-n))
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let mut inner = Map::new();
        inner.insert("n".to_string(), Value::U64(7));
        inner.insert("s".to_string(), Value::String("a\"b\n".to_string()));
        let v = Value::Array(vec![
            Value::Null,
            Value::Bool(true),
            Value::I64(-3),
            Value::F64(1.5),
            Value::Object(inner),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let mut m = Map::new();
        m.insert("k".to_string(), Value::Array(vec![Value::U64(1)]));
        let text = to_string_pretty(&Value::Object(m.clone())).unwrap();
        assert!(text.contains("\n  \"k\""));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Object(m));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
