//! Minimal vendored stand-in for the `criterion` benchmark harness
//! (offline build).
//!
//! Implements the slice of the criterion 0.5 API this workspace's benches
//! use — `Criterion::default()` + builder methods, `benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `Throughput::Elements`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros — with a simple timing loop instead of
//! criterion's statistical machinery. Each benchmark runs `sample_size`
//! samples after a warm-up period and prints the median per-iteration time.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How batches are sized in [`Bencher::iter_batched`]; accepted and ignored
/// (every batch holds one input in this stand-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Declared throughput of a benchmark, used to annotate output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter (`name/param`).
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing-loop driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    /// Median per-iteration time of the collected samples.
    median_nanos: f64,
}

impl Bencher {
    /// Measure `routine` repeatedly; the routine's return value is dropped
    /// outside the timed region only in real criterion — here it is simply
    /// dropped inline, which is fine for the workspace's cheap outputs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            std::hint::black_box(routine());
        });
    }

    /// Measure `routine` over fresh inputs built by `setup` outside the
    /// timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run a few setup+routine pairs untimed.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            std::hint::black_box(routine(setup()));
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        self.median_nanos = median(&mut samples);
    }

    fn run<F: FnMut()>(&mut self, mut f: F) {
        // Warm up and pick an iteration count giving measurable samples.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || Instant::now() >= warm_until {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
        while Instant::now() < warm_until {
            f();
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.median_nanos = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    samples[samples.len() / 2]
}

fn report(name: &str, median_nanos: f64, throughput: Option<Throughput>) {
    let time = if median_nanos >= 1_000_000.0 {
        format!("{:.3} ms", median_nanos / 1_000_000.0)
    } else if median_nanos >= 1_000.0 {
        format!("{:.3} us", median_nanos / 1_000.0)
    } else {
        format!("{median_nanos:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) if median_nanos > 0.0 => {
            let rate = n as f64 / (median_nanos / 1e9);
            println!("{name:<50} {time:>12}  {rate:.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if median_nanos > 0.0 => {
            let rate = n as f64 / (median_nanos / 1e9);
            println!("{name:<50} {time:>12}  {rate:.0} B/s");
        }
        _ => println!("{name:<50} {time:>12}"),
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    #[allow(dead_code)]
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up period before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Target measurement period (accepted; sampling here is count-based).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_bench(name, self.sample_size, self.warm_up_time, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        warm_up_time,
        median_nanos: 0.0,
    };
    f(&mut bencher);
    report(name, bencher.median_nanos, throughput);
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, name),
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Close the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("on").to_string(), "on");
    }
}
