//! Minimal vendored stand-in for the `serde` crate (offline build).
//!
//! Instead of serde's visitor-based data model, this stand-in routes all
//! (de)serialization through one dynamic [`Value`] tree — a deliberate
//! simplification that supports exactly what this workspace needs: derived
//! `Serialize`/`Deserialize` on plain structs and enums, and JSON text via
//! the sibling `serde_json` stand-in.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Ordered string-keyed map used for objects (keys sort lexicographically,
/// giving stable output).
pub type Map = BTreeMap<String, Value>;

/// A dynamically-typed (de)serialization tree, mirroring JSON's data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (serialized without sign or fraction).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// The object map, if this value is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// (De)serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization side: conversion into a [`Value`] tree.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization side: reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Path-compatibility module (`serde::ser::Error` etc.).
pub mod ser {
    pub use crate::Error;
}

/// Path-compatibility module (`serde::de::Error` etc.).
pub mod de {
    pub use crate::Error;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<usize, Error> {
        let n = v.as_u64().ok_or_else(|| Error::custom("expected usize"))?;
        usize::try_from(n).map_err(Error::custom)
    }
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(Error::custom)?
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, Error> {
        // Only reachable if a `&'static str` field is actually parsed from
        // text, which this workspace never does; the leak is the only way
        // to mint a 'static borrow from owned input.
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}

impl_ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(u64::from_value(&Value::F64(4.0)).unwrap(), 4);
        assert!(u64::from_value(&Value::F64(4.5)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
