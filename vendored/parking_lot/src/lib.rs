//! Minimal vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of parking_lot's API it actually uses, implemented over
//! `std::sync`. Semantics match parking_lot where it matters here:
//! `lock()`/`read()`/`write()` return guards directly (no poisoning —
//! a poisoned std lock propagates the panic, which is what parking_lot's
//! abort-on-poison-free design effectively gives multi-threaded tests).

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock returning guards directly (no `Result`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock returning guards directly (no `Result`).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
