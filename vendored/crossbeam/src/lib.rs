//! Minimal vendored stand-in for the `crossbeam` crate: scoped threads
//! implemented over `std::thread::scope` (the build environment has no
//! network access, so only the API surface this workspace uses exists).

#![warn(missing_docs)]

use std::thread;

/// Handle passed to the closure given to [`scope`]; spawns scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to this scope. The closure receives the scope
    /// again (crossbeam's signature), allowing nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. Returns `Ok` when every spawned thread completed without panic
/// (panics propagate out of `std::thread::scope`, so an `Err` is never
/// actually produced — matching how this workspace consumes the result).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    total.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 10);
    }
}
