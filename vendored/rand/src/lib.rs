//! Minimal vendored stand-in for the `rand` crate (offline build).
//!
//! Deterministic splitmix64/xoshiro256** generator behind the slice of the
//! `rand` 0.8 API this workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`. Streams are stable
//! across runs for a given seed (the workspace's traces rely on that), but
//! are NOT the same streams as the real `rand` crate.

#![warn(missing_docs)]

use std::ops::Range;

/// Types a generator can produce uniformly ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Ranges [`Rng::gen_range`] can sample from. Generic over the output type
/// (like real rand's `SampleRange<T>`) so integer-literal ranges infer
/// their type from the call site.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Core entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniformly random value in `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256** seeded via
    /// splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: this workspace treats the small generator identically.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for usize {
    fn draw(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // for huge spans is irrelevant for test-input generation.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
